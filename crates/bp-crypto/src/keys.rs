//! The randomized index keys table ("code book") and per-domain key
//! management — the latency-hiding core of HyBP (paper §V-C, §V-D).
//!
//! Instead of placing a strong cipher on the prediction critical path (which
//! would add ~8 front-end cycles, Figure 2), HyBP precomputes a table of
//! *index keys* with QARMA whenever keys must change. A branch prediction
//! then only performs one SRAM read (fixed latency, no misses — no timing
//! side channel) and a cheap combination of the retrieved key with the
//! plaintext index.
//!
//! The code book is renewed when (1) a context switch occurs or (2) a
//! dedicated access counter reaches its threshold (§V-D sets it near the
//! 2²⁷-access attack bound). Renewal is *non-stalling*: the pipeline keeps
//! predicting while the SRAM is rewritten; a lookup that lands on a
//! not-yet-rewritten word simply returns the stale key, costing only
//! prediction accuracy, never correctness ([`KeysTable::key_at`]).
//!
//! # Examples
//!
//! ```
//! use bp_crypto::keys::{IndexSeed, KeysTable, KeysTableConfig};
//! use bp_crypto::Qarma64;
//! use bp_common::{Asid, Vmid};
//!
//! let cipher = Qarma64::from_seed(1);
//! let mut table = KeysTable::new(KeysTableConfig::paper_default());
//! let seed = IndexSeed::derive(Asid::new(3), Vmid::new(0), 0xfeed);
//! table.begin_refresh(&cipher, seed, 0, 0);
//! // The paper's example: 1K entries x 10-bit keys in 40-bit words
//! // refresh in 7 (pipeline fill) + 256 (words) = 263 cycles.
//! assert_eq!(table.refresh_duration(), 263);
//! ```

use crate::TweakableBlockCipher;
use bp_common::{Asid, Cycle, Vmid};

/// Geometry of the randomized index keys table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeysTableConfig {
    /// Number of logical key entries (e.g. 1K..32K, Table VI).
    pub entries: usize,
    /// Width of each key in bits (the paper's example uses 10).
    pub key_bits: u32,
    /// Width of one physical SRAM word rewritten per cycle during a refresh.
    pub word_bits: u32,
    /// Cipher pipeline fill-up latency before the first word is produced.
    pub pipeline_fill: Cycle,
}

impl KeysTableConfig {
    /// The paper's running example: 1K entries of 10-bit keys organised as
    /// 256 x 40-bit words, 7-cycle cipher fill (§V-C1).
    pub const fn paper_default() -> Self {
        KeysTableConfig {
            entries: 1024,
            key_bits: 10,
            word_bits: 40,
            pipeline_fill: 7,
        }
    }

    /// Same organisation with a different entry count (Table VI sweep).
    pub const fn with_entries(entries: usize) -> Self {
        KeysTableConfig {
            entries,
            ..Self::paper_default()
        }
    }

    /// Number of logical keys per physical word.
    pub fn keys_per_word(&self) -> usize {
        (self.word_bits / self.key_bits) as usize
    }

    /// Number of physical words backing the table.
    pub fn words(&self) -> usize {
        self.entries.div_ceil(self.keys_per_word())
    }

    /// Storage size of one table in bytes.
    pub fn storage_bytes(&self) -> usize {
        (self.entries * self.key_bits as usize).div_ceil(8)
    }

    fn validate(&self) {
        assert!(self.entries > 0, "table must have at least one entry");
        assert!(
            self.key_bits > 0 && self.key_bits <= 64,
            "key width must be 1..=64 bits"
        );
        assert!(
            self.word_bits >= self.key_bits,
            "a word must hold at least one key"
        );
    }
}

impl Default for KeysTableConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The hardware-internal seed for code-book generation (§V-C1).
///
/// Derived from the ASID, the VMID and a value from a hardware random number
/// generator or PUF; never visible to software, including the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexSeed(u64);

impl IndexSeed {
    /// Derives the seed from the architectural identifiers and the hardware
    /// random value. The mixing is a fixed injective-ish packing followed by
    /// a SplitMix finalizer so that adjacent ASIDs do not produce related
    /// seeds.
    pub fn derive(asid: Asid, vmid: Vmid, hardware_rand: u64) -> Self {
        let packed = (u64::from(asid.raw()) << 48)
            ^ (u64::from(vmid.raw()) << 32)
            ^ hardware_rand;
        let mut z = packed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        IndexSeed(z ^ (z >> 31))
    }

    /// Raw 64-bit seed value (used as the cipher tweak).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// State of an in-flight, non-stalling code-book refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RefreshState {
    started_at: Cycle,
    old_keys: Vec<u64>,
}

/// The randomized index keys table.
///
/// See the [module documentation](self) for the role this table plays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeysTable {
    config: KeysTableConfig,
    keys: Vec<u64>,
    refresh: Option<RefreshState>,
    accesses_since_refresh: u64,
    generation: u64,
    stale_hits: u64,
}

impl KeysTable {
    /// Creates an all-zero-key table with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero entries, key wider
    /// than a word, ...).
    pub fn new(config: KeysTableConfig) -> Self {
        config.validate();
        KeysTable {
            keys: vec![0; config.entries],
            config,
            refresh: None,
            accesses_since_refresh: 0,
            generation: 0,
            stale_hits: 0,
        }
    }

    /// The table geometry.
    pub fn config(&self) -> &KeysTableConfig {
        &self.config
    }

    /// Cycles from refresh start until the last word is rewritten:
    /// pipeline fill + one word per cycle (§V-C1).
    pub fn refresh_duration(&self) -> Cycle {
        self.config.pipeline_fill + self.config.words() as Cycle
    }

    /// Starts a non-stalling refresh at cycle `now`, filling the table with
    /// ciphertext of a timer-readout sequence under `seed` (§V-C1).
    ///
    /// The old key material remains visible for words the rewrite has not
    /// reached yet; see [`KeysTable::key_at`].
    pub fn begin_refresh(
        &mut self,
        cipher: &dyn TweakableBlockCipher,
        seed: IndexSeed,
        timer_base: u64,
        now: Cycle,
    ) {
        let old_keys = std::mem::take(&mut self.keys);
        let per_word = self.config.keys_per_word();
        let key_mask = if self.config.key_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.key_bits) - 1
        };
        let mut keys = Vec::with_capacity(self.config.entries);
        for word_idx in 0..self.config.words() {
            let word = cipher.encrypt(timer_base.wrapping_add(word_idx as u64), seed.raw());
            for slot in 0..per_word {
                if keys.len() == self.config.entries {
                    break;
                }
                keys.push((word >> (slot as u32 * self.config.key_bits)) & key_mask);
            }
        }
        self.keys = keys;
        self.refresh = Some(RefreshState {
            started_at: now,
            old_keys,
        });
        self.accesses_since_refresh = 0;
        self.generation += 1;
    }

    /// Reads the key for `entry` at cycle `now`, modelling the non-stalling
    /// refresh: if the word holding `entry` has not been rewritten yet, the
    /// *previous generation's* key is returned (and counted as a stale hit).
    ///
    /// Also counts the access toward the renewal threshold.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of bounds.
    pub fn key_at(&mut self, entry: usize, now: Cycle) -> u64 {
        assert!(entry < self.config.entries, "key entry out of bounds");
        self.accesses_since_refresh += 1;
        if let Some(refresh) = &self.refresh {
            let word_idx = (entry / self.config.keys_per_word()) as Cycle;
            let rewritten_at = refresh.started_at + self.config.pipeline_fill + word_idx + 1;
            if now < rewritten_at {
                self.stale_hits += 1;
                return refresh.old_keys.get(entry).copied().unwrap_or(0);
            }
            // Drop the old generation once the whole table is rewritten.
            if now >= refresh.started_at + self.refresh_duration() {
                self.refresh = None;
            }
        }
        self.keys[entry]
    }

    /// Whether the access counter has reached `threshold` and a renewal
    /// request should be sent (§VI-C).
    pub fn needs_refresh(&self, threshold: u64) -> bool {
        self.accesses_since_refresh >= threshold
    }

    /// Number of accesses since the last refresh (the dedicated counter).
    pub fn accesses_since_refresh(&self) -> u64 {
        self.accesses_since_refresh
    }

    /// How many lookups returned a stale (old-generation) key, across the
    /// table's lifetime. Evaluated in Table VI.
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits
    }

    /// Monotonic refresh generation (0 = never refreshed).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether a refresh is still in flight at cycle `now`.
    pub fn refresh_in_flight(&self, now: Cycle) -> bool {
        self.refresh
            .as_ref()
            .is_some_and(|r| now < r.started_at + self.refresh_duration())
    }
}

/// Per-`(hardware thread, privilege)` key state: the content key registers
/// and the isolated keys table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainKeys {
    content_key: u64,
    table: KeysTable,
}

impl DomainKeys {
    /// Creates zeroed key state.
    pub fn new(config: KeysTableConfig) -> Self {
        DomainKeys {
            content_key: 0,
            table: KeysTable::new(config),
        }
    }

    /// The current content key (XOR-ed into stored table contents).
    pub fn content_key(&self) -> u64 {
        self.content_key
    }

    /// Shared access to the keys table.
    pub fn table(&self) -> &KeysTable {
        &self.table
    }

    /// Mutable access to the keys table.
    pub fn table_mut(&mut self) -> &mut KeysTable {
        &mut self.table
    }
}

/// Key manager for all isolation slots of a core (§V-D).
///
/// Owns one [`DomainKeys`] per `(hardware thread, privilege)` slot, the
/// modeled hardware timer and random source, and implements the paper's key
/// change policy: renew a slot's keys on context switch and whenever the
/// access counter reaches the threshold.
///
/// Content-key update is a 1-cycle register write and takes effect
/// immediately; the keys-table rewrite proceeds in the background
/// (two-step refresh, §V-C2).
#[derive(Debug)]
pub struct KeyManager {
    cipher: Box<dyn TweakableBlockCipher>,
    slots: Vec<DomainKeys>,
    /// Models the hardware DRNG/PUF feeding the index seed.
    rand_source: bp_common::rng::SplitMix64,
    /// Models the free-running timer register read during code-book fill.
    timer: u64,
    /// Access-counter threshold for forced renewal (paper: ≈ 2²⁷).
    threshold: u64,
}

/// The paper's renewal threshold: the shortest analyzed attack needs ≈ 2²⁷
/// BPU accesses (§VI-C).
pub const PAPER_RENEWAL_THRESHOLD: u64 = 1 << 27;

impl KeyManager {
    /// Creates a manager with `slot_count` isolation slots.
    ///
    /// # Panics
    ///
    /// Panics if `slot_count` is zero.
    pub fn new(
        cipher: Box<dyn TweakableBlockCipher>,
        slot_count: usize,
        config: KeysTableConfig,
        threshold: u64,
        seed: u64,
    ) -> Self {
        assert!(slot_count > 0, "need at least one isolation slot");
        KeyManager {
            cipher,
            slots: (0..slot_count).map(|_| DomainKeys::new(config)).collect(),
            rand_source: bp_common::rng::SplitMix64::new(seed),
            timer: 0x1000,
            threshold,
        }
    }

    /// Number of isolation slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The renewal threshold in accesses.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Renews all keys of `slot` (content key immediately, keys table in the
    /// background), as on a context switch. Returns the cycle at which the
    /// table rewrite completes.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn renew(&mut self, slot: usize, asid: Asid, vmid: Vmid, now: Cycle) -> Cycle {
        let rand = self.rand_source.next_u64();
        let seed = IndexSeed::derive(asid, vmid, rand);
        // Step 1 (1 cycle): content key registers.
        self.slots[slot].content_key = self.cipher.encrypt(self.timer, seed.raw() ^ 0xC0DE);
        // Step 2 (hundreds of cycles, non-stalling): SRAM rewrite.
        let timer_base = self.timer;
        self.timer = self.timer.wrapping_add(0x10_0000);
        let table = self.slots[slot].table_mut();
        table.begin_refresh(self.cipher.as_ref(), seed, timer_base, now);
        now + table.refresh_duration()
    }

    /// Looks up the index key for a branch in `slot`; the table is indexed by
    /// a slice of the branch PC (§V-C). Counts the access and, if the counter
    /// crossed the threshold, renews the slot's keys automatically and
    /// reports it.
    ///
    /// Returns `(key, renewed)`.
    pub fn index_key(
        &mut self,
        slot: usize,
        pc_slice: u64,
        asid: Asid,
        vmid: Vmid,
        now: Cycle,
    ) -> (u64, bool) {
        let entries = self.slots[slot].table().config().entries;
        let entry = (pc_slice as usize) % entries;
        let key = self.slots[slot].table_mut().key_at(entry, now);
        if self.slots[slot].table().needs_refresh(self.threshold) {
            self.renew(slot, asid, vmid, now);
            return (key, true);
        }
        (key, false)
    }

    /// The content key currently active for `slot`.
    pub fn content_key(&self, slot: usize) -> u64 {
        self.slots[slot].content_key()
    }

    /// Read-only access to a slot's key state.
    pub fn slot(&self, slot: usize) -> &DomainKeys {
        &self.slots[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Qarma64;

    fn cipher() -> Qarma64 {
        Qarma64::from_seed(0xA5A5)
    }

    #[test]
    fn paper_geometry_263_cycles() {
        let t = KeysTable::new(KeysTableConfig::paper_default());
        assert_eq!(t.config().keys_per_word(), 4);
        assert_eq!(t.config().words(), 256);
        assert_eq!(t.refresh_duration(), 263);
        assert_eq!(t.config().storage_bytes(), 1280); // 1.25 KB per table
    }

    #[test]
    fn keys_fit_width() {
        let mut t = KeysTable::new(KeysTableConfig::paper_default());
        let seed = IndexSeed::derive(Asid::new(1), Vmid::new(0), 42);
        t.begin_refresh(&cipher(), seed, 0, 0);
        for i in 0..1024 {
            assert!(t.key_at(i, 10_000) < (1 << 10));
        }
    }

    #[test]
    fn refresh_changes_keys() {
        let mut t = KeysTable::new(KeysTableConfig::paper_default());
        let c = cipher();
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 1), 0, 0);
        let before: Vec<u64> = (0..1024).map(|i| t.key_at(i, 10_000)).collect();
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 2), 4096, 20_000);
        let after: Vec<u64> = (0..1024).map(|i| t.key_at(i, 40_000)).collect();
        let differing = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(differing > 900, "only {differing} of 1024 keys changed");
    }

    #[test]
    fn non_stalling_refresh_serves_stale_keys() {
        let mut t = KeysTable::new(KeysTableConfig::paper_default());
        let c = cipher();
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 1), 0, 0);
        // Let the first refresh complete, remember a late entry's key.
        let old_last = t.key_at(1023, 100_000);
        // Start a second refresh at cycle 200_000.
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 2), 999, 200_000);
        // Entry 1023 lives in the last word, rewritten at 200_000 + 7 + 256.
        assert_eq!(t.key_at(1023, 200_001), old_last, "stale key expected");
        assert!(t.refresh_in_flight(200_001));
        assert!(!t.refresh_in_flight(201_000));
        // Entry 0 is rewritten right after the pipeline fill.
        let _ = t.key_at(0, 200_000 + 8);
        assert!(t.stale_hits() >= 1);
        // After completion the keys are the new generation's: with 8 entries
        // of 10-bit keys compared, an accidental full match is ~2^-80.
        let old_tail: Vec<u64> = (1016..1024).map(|i| t.key_at(i, 199_999)).collect();
        let new_tail: Vec<u64> = (1016..1024).map(|i| t.key_at(i, 200_000 + 263)).collect();
        assert_ne!(new_tail, old_tail, "keys should change across refresh");
    }

    #[test]
    fn early_words_rewrite_before_late_words() {
        let mut t = KeysTable::new(KeysTableConfig::paper_default());
        let c = cipher();
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(7), Vmid::new(0), 3), 0, 0);
        let now = 0 + 7 + 1; // first word rewritten, rest stale
        let stale_before = t.stale_hits();
        let _ = t.key_at(0, now);
        assert_eq!(t.stale_hits(), stale_before, "entry 0 must be fresh");
        let _ = t.key_at(1023, now);
        assert_eq!(t.stale_hits(), stale_before + 1, "entry 1023 must be stale");
    }

    #[test]
    fn access_counter_triggers_refresh_request() {
        let mut t = KeysTable::new(KeysTableConfig::with_entries(4));
        assert!(!t.needs_refresh(5));
        for _ in 0..5 {
            let _ = t.key_at(0, 0);
        }
        assert!(t.needs_refresh(5));
        t.begin_refresh(&cipher(), IndexSeed::derive(Asid::new(0), Vmid::new(0), 0), 0, 0);
        assert!(!t.needs_refresh(5), "counter must reset on refresh");
    }

    #[test]
    fn generation_increments() {
        let mut t = KeysTable::new(KeysTableConfig::with_entries(16));
        assert_eq!(t.generation(), 0);
        t.begin_refresh(&cipher(), IndexSeed::derive(Asid::new(0), Vmid::new(0), 0), 0, 0);
        assert_eq!(t.generation(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_entry_panics() {
        let mut t = KeysTable::new(KeysTableConfig::with_entries(16));
        let _ = t.key_at(16, 0);
    }

    #[test]
    fn index_seed_differs_across_asids() {
        let a = IndexSeed::derive(Asid::new(1), Vmid::new(0), 99);
        let b = IndexSeed::derive(Asid::new(2), Vmid::new(0), 99);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn index_seed_depends_on_hardware_rand() {
        let a = IndexSeed::derive(Asid::new(1), Vmid::new(0), 1);
        let b = IndexSeed::derive(Asid::new(1), Vmid::new(0), 2);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn key_manager_renews_per_slot_independently() {
        let mut km = KeyManager::new(
            Box::new(cipher()),
            4,
            KeysTableConfig::with_entries(64),
            PAPER_RENEWAL_THRESHOLD,
            7,
        );
        let done = km.renew(2, Asid::new(5), Vmid::new(0), 1000);
        assert!(done > 1000);
        assert_eq!(km.slot(2).table().generation(), 1);
        assert_eq!(km.slot(0).table().generation(), 0, "other slots untouched");
        assert_ne!(km.content_key(2), 0);
        assert_eq!(km.content_key(0), 0);
    }

    #[test]
    fn key_manager_counter_renewal() {
        let mut km = KeyManager::new(
            Box::new(cipher()),
            1,
            KeysTableConfig::with_entries(8),
            4, // tiny threshold for the test
            9,
        );
        let mut renewed_count = 0;
        for i in 0..20u64 {
            let (_k, renewed) = km.index_key(0, i, Asid::new(1), Vmid::new(0), i * 10);
            if renewed {
                renewed_count += 1;
            }
        }
        assert!(renewed_count >= 4, "threshold 4 over 20 accesses: {renewed_count}");
    }

    #[test]
    fn same_pc_slice_same_key_between_renewals() {
        let mut km = KeyManager::new(
            Box::new(cipher()),
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            11,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        let (k1, _) = km.index_key(0, 0x1234, Asid::new(3), Vmid::new(1), 5000);
        let (k2, _) = km.index_key(0, 0x1234, Asid::new(3), Vmid::new(1), 6000);
        assert_eq!(k1, k2);
    }

    #[test]
    fn renewal_changes_index_keys() {
        let mut km = KeyManager::new(
            Box::new(cipher()),
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            13,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        let keys_a: Vec<u64> = (0..64)
            .map(|pc| km.index_key(0, pc, Asid::new(3), Vmid::new(1), 5000).0)
            .collect();
        km.renew(0, Asid::new(3), Vmid::new(1), 10_000);
        let keys_b: Vec<u64> = (0..64)
            .map(|pc| km.index_key(0, pc, Asid::new(3), Vmid::new(1), 20_000).0)
            .collect();
        assert_ne!(keys_a, keys_b);
    }
}
