//! The randomized index keys table ("code book") and per-domain key
//! management — the latency-hiding core of HyBP (paper §V-C, §V-D).
//!
//! Instead of placing a strong cipher on the prediction critical path (which
//! would add ~8 front-end cycles, Figure 2), HyBP precomputes a table of
//! *index keys* with QARMA whenever keys must change. A branch prediction
//! then only performs one SRAM read (fixed latency, no misses — no timing
//! side channel) and a cheap combination of the retrieved key with the
//! plaintext index.
//!
//! The code book is renewed when (1) a context switch occurs or (2) a
//! dedicated access counter reaches its threshold (§V-D sets it near the
//! 2²⁷-access attack bound). Renewal is *non-stalling*: the pipeline keeps
//! predicting while the SRAM is rewritten; a lookup that lands on a
//! not-yet-rewritten word simply returns the stale key, costing only
//! prediction accuracy, never correctness ([`KeysTable::key_at`]).
//!
//! The same degradation policy covers faults: a corrupted key entry (see
//! [`KeysTable::inject_bit_flip`] and the `bp-faults` crate) or an
//! out-of-range read produces a *wrong key* — a misprediction at worst —
//! and never an abort. Constructors validate their configuration and return
//! [`ConfigError`] instead of panicking.
//!
//! # Examples
//!
//! ```
//! use bp_crypto::keys::{IndexSeed, KeysTable, KeysTableConfig};
//! use bp_crypto::Qarma64;
//! use bp_common::{Asid, Vmid};
//!
//! let cipher = Qarma64::from_seed(1);
//! let mut table = KeysTable::new(KeysTableConfig::paper_default()).expect("paper default");
//! let seed = IndexSeed::derive(Asid::new(3), Vmid::new(0), 0xfeed);
//! table.begin_refresh(&cipher, seed, 0, 0);
//! // The paper's example: 1K entries x 10-bit keys in 40-bit words
//! // refresh in 7 (pipeline fill) + 256 (words) = 263 cycles.
//! assert_eq!(table.refresh_duration(), 263);
//! ```

use crate::TweakableBlockCipher;
use bp_common::{Asid, ConfigError, Cycle, Vmid};
use bp_faults::{FaultInjector, RefreshDisposition};

/// Geometry of the randomized index keys table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeysTableConfig {
    /// Number of logical key entries (e.g. 1K..32K, Table VI).
    pub entries: usize,
    /// Width of each key in bits (the paper's example uses 10).
    pub key_bits: u32,
    /// Width of one physical SRAM word rewritten per cycle during a refresh.
    pub word_bits: u32,
    /// Cipher pipeline fill-up latency before the first word is produced.
    pub pipeline_fill: Cycle,
}

impl KeysTableConfig {
    /// The paper's running example: 1K entries of 10-bit keys organised as
    /// 256 x 40-bit words, 7-cycle cipher fill (§V-C1).
    pub const fn paper_default() -> Self {
        KeysTableConfig {
            entries: 1024,
            key_bits: 10,
            word_bits: 40,
            pipeline_fill: 7,
        }
    }

    /// Same organisation with a different entry count (Table VI sweep).
    pub const fn with_entries(entries: usize) -> Self {
        KeysTableConfig {
            entries,
            ..Self::paper_default()
        }
    }

    /// A fully explicit, validated geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `entries` is zero, `key_bits` is zero or
    /// wider than 64, or a word cannot hold at least one key.
    pub fn checked(
        entries: usize,
        key_bits: u32,
        word_bits: u32,
        pipeline_fill: Cycle,
    ) -> Result<Self, ConfigError> {
        let cfg = KeysTableConfig {
            entries,
            key_bits,
            word_bits,
            pipeline_fill,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Number of logical keys per physical word.
    ///
    /// Total function even on unvalidated geometries: a zero key width or a
    /// key wider than a word clamps to one key per word instead of dividing
    /// toward zero (call [`KeysTableConfig::validate`] to reject such
    /// configurations up front).
    pub fn keys_per_word(&self) -> usize {
        ((self.word_bits / self.key_bits.max(1)).max(1)) as usize
    }

    /// Number of physical words backing the table.
    pub fn words(&self) -> usize {
        self.entries.div_ceil(self.keys_per_word())
    }

    /// Storage size of one table in bytes.
    pub fn storage_bytes(&self) -> usize {
        (self.entries * self.key_bits as usize).div_ceil(8)
    }

    /// Checks the geometry for consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.entries == 0 {
            return Err(ConfigError::zero("keys table entries"));
        }
        if self.key_bits == 0 {
            return Err(ConfigError::zero("keys table key_bits"));
        }
        if self.key_bits > 64 {
            return Err(ConfigError::too_large(
                "keys table key_bits",
                u64::from(self.key_bits),
                64,
            ));
        }
        if self.word_bits < self.key_bits {
            return Err(ConfigError::inconsistent(
                "keys table geometry",
                "a word must hold at least one key (word_bits >= key_bits)",
            ));
        }
        Ok(())
    }
}

impl Default for KeysTableConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The hardware-internal seed for code-book generation (§V-C1).
///
/// Derived from the ASID, the VMID and a value from a hardware random number
/// generator or PUF; never visible to software, including the hypervisor.
// No `Debug`: the seed is key material derived from the hardware RNG/PUF
// (secret-hygiene, bp-lint secret-debug).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexSeed(u64);

impl IndexSeed {
    /// Derives the seed from the architectural identifiers and the hardware
    /// random value. The mixing is a fixed injective-ish packing followed by
    /// a SplitMix finalizer so that adjacent ASIDs do not produce related
    /// seeds.
    pub fn derive(asid: Asid, vmid: Vmid, hardware_rand: u64) -> Self {
        let packed = (u64::from(asid.raw()) << 48) ^ (u64::from(vmid.raw()) << 32) ^ hardware_rand;
        let mut z = packed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        IndexSeed(z ^ (z >> 31))
    }

    /// Raw 64-bit seed value (used as the cipher tweak).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// State of an in-flight, non-stalling code-book refresh.
// No `Debug`: `old_keys` is the previous-generation code book
// (secret-hygiene, bp-lint secret-debug).
#[derive(Clone, PartialEq, Eq)]
struct RefreshState {
    started_at: Cycle,
    old_keys: Vec<u64>,
}

/// The randomized index keys table.
///
/// See the [module documentation](self) for the role this table plays.
// No `Debug`/`Display`: `keys` is the live code book; printing it hands an
// attacker the randomization secret (secret-hygiene, bp-lint secret-debug).
#[derive(Clone, PartialEq, Eq)]
pub struct KeysTable {
    config: KeysTableConfig,
    keys: Vec<u64>,
    refresh: Option<RefreshState>,
    accesses_since_refresh: u64,
    generation: u64,
    stale_hits: u64,
    anomalous_reads: u64,
}

impl KeysTable {
    /// Creates an all-zero-key table with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent (zero
    /// entries, key wider than a word, ...).
    pub fn new(config: KeysTableConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(KeysTable {
            keys: vec![0; config.entries],
            config,
            refresh: None,
            accesses_since_refresh: 0,
            generation: 0,
            stale_hits: 0,
            anomalous_reads: 0,
        })
    }

    /// The table geometry.
    pub fn config(&self) -> &KeysTableConfig {
        &self.config
    }

    /// Cycles from refresh start until the last word is rewritten:
    /// pipeline fill + one word per cycle (§V-C1).
    pub fn refresh_duration(&self) -> Cycle {
        self.config.pipeline_fill + self.config.words() as Cycle
    }

    /// The key of `entry` as architecturally visible at cycle `now`: the old
    /// generation's key while the rewrite has not reached the entry's word.
    /// Pure read — no counters, no refresh-state transitions.
    fn visible_key(&self, entry: usize, now: Cycle) -> u64 {
        if let Some(refresh) = &self.refresh {
            let word_idx = (entry / self.config.keys_per_word()) as Cycle;
            let rewritten_at = refresh.started_at + self.config.pipeline_fill + word_idx + 1;
            if now < rewritten_at {
                return refresh.old_keys.get(entry).copied().unwrap_or(0);
            }
        }
        self.keys.get(entry).copied().unwrap_or(0)
    }

    /// Starts a non-stalling refresh at cycle `now`, filling the table with
    /// ciphertext of a timer-readout sequence under `seed` (§V-C1).
    ///
    /// The old key material remains visible for words the rewrite has not
    /// reached yet; see [`KeysTable::key_at`]. A refresh may overlap an
    /// in-flight one (e.g. a context switch during the rewrite): the
    /// snapshot preserved as "old" keys is then the architecturally visible
    /// mix of the two earlier generations at `now`, not either generation
    /// wholesale.
    pub fn begin_refresh(
        &mut self,
        cipher: &dyn TweakableBlockCipher,
        seed: IndexSeed,
        timer_base: u64,
        now: Cycle,
    ) {
        let old_keys: Vec<u64> = (0..self.config.entries)
            .map(|e| self.visible_key(e, now))
            .collect();
        let per_word = self.config.keys_per_word();
        let key_mask = if self.config.key_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.key_bits) - 1
        };
        // The whole code book shares one tweak (the seed), so a single batch
        // call lets the cipher build its tweak schedule once for all words.
        let mut words: Vec<u64> = (0..self.config.words())
            .map(|word_idx| timer_base.wrapping_add(word_idx as u64))
            .collect();
        cipher.encrypt_batch(&mut words, seed.raw());
        let mut keys = Vec::with_capacity(self.config.entries);
        for word in words {
            for slot in 0..per_word {
                if keys.len() == self.config.entries {
                    break;
                }
                keys.push((word >> (slot as u32 * self.config.key_bits)) & key_mask);
            }
        }
        self.keys = keys;
        self.refresh = Some(RefreshState {
            started_at: now,
            old_keys,
        });
        self.accesses_since_refresh = 0;
        self.generation += 1;
    }

    /// Reads the key for `entry` at cycle `now`, modelling the non-stalling
    /// refresh: if the word holding `entry` has not been rewritten yet, the
    /// *previous generation's* key is returned (and counted as a stale hit).
    ///
    /// Also counts the access toward the renewal threshold.
    ///
    /// An out-of-range `entry` (a faulted index, or a caller bug) is folded
    /// back into the table and counted in
    /// [`KeysTable::anomalous_reads`] — a wrong key costs a misprediction,
    /// never an abort.
    #[inline]
    pub fn key_at(&mut self, entry: usize, now: Cycle) -> u64 {
        let entry = if entry < self.config.entries {
            entry
        } else {
            self.anomalous_reads += 1;
            entry % self.config.entries
        };
        self.accesses_since_refresh += 1;
        if let Some(refresh) = &self.refresh {
            let word_idx = (entry / self.config.keys_per_word()) as Cycle;
            let rewritten_at = refresh.started_at + self.config.pipeline_fill + word_idx + 1;
            if now < rewritten_at {
                self.stale_hits += 1;
                return refresh.old_keys.get(entry).copied().unwrap_or(0);
            }
            // Drop the old generation once the whole table is rewritten.
            if now >= refresh.started_at + self.refresh_duration() {
                self.refresh = None;
            }
        }
        self.keys.get(entry).copied().unwrap_or(0)
    }

    /// Flips one bit of the *stored* (current-generation) key of `entry`,
    /// modelling persistent SRAM corruption. `entry` and `bit` are folded
    /// into range. The corruption behaves exactly like a stale key: wrong
    /// prediction, correct execution.
    pub fn inject_bit_flip(&mut self, entry: usize, bit: u32) {
        let entry = entry % self.config.entries.max(1);
        let bit = bit % self.config.key_bits.max(1);
        // bp-lint: allow(secret-taint-branch) reason="branches on the index bounds check (Option presence), never on key bit values"
        if let Some(k) = self.keys.get_mut(entry) {
            *k ^= 1u64 << bit;
        }
    }

    /// Forces the access counter to at least `count` (counter-saturation
    /// fault; the next threshold check then triggers a renewal).
    pub fn force_access_count(&mut self, count: u64) {
        self.accesses_since_refresh = self.accesses_since_refresh.max(count);
    }

    /// Whether the access counter has reached `threshold` and a renewal
    /// request should be sent (§VI-C).
    #[inline]
    pub fn needs_refresh(&self, threshold: u64) -> bool {
        self.accesses_since_refresh >= threshold
    }

    /// Number of accesses since the last refresh (the dedicated counter).
    pub fn accesses_since_refresh(&self) -> u64 {
        self.accesses_since_refresh
    }

    /// How many lookups returned a stale (old-generation) key, across the
    /// table's lifetime. Evaluated in Table VI.
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits
    }

    /// How many reads arrived with an out-of-range entry and were folded
    /// back into the table (fault accounting).
    pub fn anomalous_reads(&self) -> u64 {
        self.anomalous_reads
    }

    /// Monotonic refresh generation (0 = never refreshed).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether a refresh is still in flight at cycle `now`.
    pub fn refresh_in_flight(&self, now: Cycle) -> bool {
        self.refresh
            .as_ref()
            .is_some_and(|r| now < r.started_at + self.refresh_duration())
    }
}

/// Per-`(hardware thread, privilege)` key state: the content key registers
/// and the isolated keys table.
// No `Debug`: holds the content key and the keys table
// (secret-hygiene, bp-lint secret-debug).
#[derive(Clone, PartialEq, Eq)]
pub struct DomainKeys {
    content_key: u64,
    table: KeysTable,
}

impl DomainKeys {
    /// Creates zeroed key state.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the table geometry is inconsistent.
    pub fn new(config: KeysTableConfig) -> Result<Self, ConfigError> {
        Ok(DomainKeys {
            content_key: 0,
            table: KeysTable::new(config)?,
        })
    }

    /// The current content key (XOR-ed into stored table contents).
    pub fn content_key(&self) -> u64 {
        self.content_key
    }

    /// Shared access to the keys table.
    pub fn table(&self) -> &KeysTable {
        &self.table
    }

    /// Mutable access to the keys table.
    pub fn table_mut(&mut self) -> &mut KeysTable {
        &mut self.table
    }
}

/// Key manager for all isolation slots of a core (§V-D).
///
/// Owns one [`DomainKeys`] per `(hardware thread, privilege)` slot, the
/// modeled hardware timer and random source, and implements the paper's key
/// change policy: renew a slot's keys on context switch and whenever the
/// access counter reaches the threshold.
///
/// Content-key update is a 1-cycle register write and takes effect
/// immediately; the keys-table rewrite proceeds in the background
/// (two-step refresh, §V-C2).
///
/// An optional [`FaultInjector`] disturbs key reads (persistent bit flips),
/// counter checks (saturation) and refresh requests (delay/drop); see the
/// `bp-faults` crate. Disturbances never change the *reported* refresh
/// timing — [`KeyManager::renew`] always returns the nominal completion
/// cycle, so no fault opens a timing channel.
// No `Debug`: owns every isolation slot's key state
// (secret-hygiene, bp-lint secret-debug).
pub struct KeyManager {
    cipher: Box<dyn TweakableBlockCipher>,
    slots: Vec<DomainKeys>,
    /// Models the hardware DRNG/PUF feeding the index seed.
    rand_source: bp_common::rng::SplitMix64,
    /// Models the free-running timer register read during code-book fill.
    timer: u64,
    /// Access-counter threshold for forced renewal (paper: ≈ 2²⁷).
    threshold: u64,
    faults: Option<FaultInjector>,
    telemetry: bp_common::Telemetry,
    /// Renewals whose table rewrite was dropped (keys left stale).
    refresh_stalls: u64,
    /// Renewals whose table rewrite silently started late.
    refresh_delays: u64,
}

/// The paper's renewal threshold: the shortest analyzed attack needs ≈ 2²⁷
/// BPU accesses (§VI-C).
pub const PAPER_RENEWAL_THRESHOLD: u64 = 1 << 27;

impl KeyManager {
    /// Creates a manager with `slot_count` isolation slots.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `slot_count` or `threshold` is zero, or
    /// the table geometry is inconsistent.
    pub fn new(
        cipher: Box<dyn TweakableBlockCipher>,
        slot_count: usize,
        config: KeysTableConfig,
        threshold: u64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if slot_count == 0 {
            return Err(ConfigError::zero("isolation slot count"));
        }
        if threshold == 0 {
            // A zero threshold would demand a renewal on every access.
            return Err(ConfigError::zero("renewal threshold"));
        }
        config.validate()?;
        let slots = (0..slot_count)
            .map(|_| DomainKeys::new(config))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(KeyManager {
            cipher,
            slots,
            rand_source: bp_common::rng::SplitMix64::new(seed),
            timer: 0x1000,
            threshold,
            faults: None,
            telemetry: bp_common::Telemetry::disabled(),
            refresh_stalls: 0,
            refresh_delays: 0,
        })
    }

    /// Installs (or removes) the fault injector consulted on key reads,
    /// counter checks and refresh requests.
    pub fn set_fault_injector(&mut self, faults: Option<FaultInjector>) {
        self.faults = faults;
    }

    /// Installs the telemetry sink every renewal reports its refresh span
    /// to. The span always covers the *nominal* rewrite window — like the
    /// return value of [`KeyManager::renew`], it is fault-independent, so
    /// the exported event stream cannot leak fault state through timing.
    pub fn set_telemetry(&mut self, telemetry: bp_common::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of isolation slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The renewal threshold in accesses.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Folds an out-of-range slot id into range (counted per-table as an
    /// anomalous read when it reaches one).
    #[inline]
    fn clamp_slot(&self, slot: usize) -> usize {
        if slot < self.slots.len() {
            slot
        } else {
            slot % self.slots.len().max(1)
        }
    }

    /// Renews all keys of `slot` (content key immediately, keys table in the
    /// background), as on a context switch. Returns the cycle at which the
    /// table rewrite nominally completes.
    ///
    /// The return value is the *acknowledged* completion time and does not
    /// change when a fault delays or drops the actual rewrite: faults must
    /// not modulate observable timing.
    pub fn renew(&mut self, slot: usize, asid: Asid, vmid: Vmid, now: Cycle) -> Cycle {
        let slot = self.clamp_slot(slot);
        let nominal_done = now + self.slots[slot].table().refresh_duration();
        // Emitted before any fault disposition is consulted: the exported
        // span must match the acknowledged (nominal) timing in every case.
        self.telemetry
            .span(now, "keys", "refresh", now, nominal_done, slot as u64);
        let disposition = match &self.faults {
            Some(f) => f.on_refresh(slot, now),
            None => RefreshDisposition::Proceed,
        };
        if disposition == RefreshDisposition::Drop {
            // The renewal request is lost: keys stay stale, the counter
            // keeps running, and the next trigger will retry. The stall is
            // counted so a serving layer can surface degraded mode — the
            // counter is observation-only and never feeds back into timing.
            self.refresh_stalls += 1;
            return nominal_done;
        }
        if matches!(disposition, RefreshDisposition::Delay(_)) {
            self.refresh_delays += 1;
        }
        let rand = self.rand_source.next_u64();
        let seed = IndexSeed::derive(asid, vmid, rand);
        // Step 1 (1 cycle): content key registers.
        self.slots[slot].content_key = self.cipher.encrypt(self.timer, seed.raw() ^ 0xC0DE);
        // Step 2 (hundreds of cycles, non-stalling): SRAM rewrite, possibly
        // silently starting late under a delay fault.
        let start = match disposition {
            RefreshDisposition::Delay(d) => now + d,
            _ => now,
        };
        let timer_base = self.timer;
        self.timer = self.timer.wrapping_add(0x10_0000);
        let table = self.slots[slot].table_mut();
        table.begin_refresh(self.cipher.as_ref(), seed, timer_base, start);
        nominal_done
    }

    /// Looks up the index key for a branch in `slot`; the table is indexed by
    /// a slice of the branch PC (§V-C). Counts the access and, if the counter
    /// crossed the threshold, renews the slot's keys automatically and
    /// reports it.
    ///
    /// Returns `(key, renewed)`.
    #[inline]
    pub fn index_key(
        &mut self,
        slot: usize,
        pc_slice: u64,
        asid: Asid,
        vmid: Vmid,
        now: Cycle,
    ) -> (u64, bool) {
        let slot = self.clamp_slot(slot);
        let entries = self.slots[slot].table().config().entries;
        let entry = bp_common::fast_mod_usize(pc_slice as usize, entries);
        // Borrow rather than clone: `faults` and `slots` are disjoint fields,
        // and this runs once per predicted branch.
        if let Some(f) = &self.faults {
            let key_bits = self.slots[slot].table().config().key_bits;
            if let Some(bit) = f.on_key_read(slot, entry, key_bits, now) {
                self.slots[slot].table_mut().inject_bit_flip(entry, bit);
            }
            if f.saturate_counter(slot, now) {
                let threshold = self.threshold;
                self.slots[slot].table_mut().force_access_count(threshold);
            }
        }
        let key = self.slots[slot].table_mut().key_at(entry, now);
        if self.slots[slot].table().needs_refresh(self.threshold) {
            self.renew(slot, asid, vmid, now);
            return (key, true);
        }
        (key, false)
    }

    /// The content key currently active for `slot`.
    #[inline]
    pub fn content_key(&self, slot: usize) -> u64 {
        self.slots[self.clamp_slot(slot)].content_key()
    }

    /// Read-only access to a slot's key state.
    pub fn slot(&self, slot: usize) -> &DomainKeys {
        &self.slots[self.clamp_slot(slot)]
    }

    /// Renewals whose table rewrite was dropped by a fault: the slot kept
    /// serving its stale keys (§V-C2 — stale keys cost accuracy, never
    /// correctness). Monotone over the manager's lifetime.
    pub fn refresh_stalls(&self) -> u64 {
        self.refresh_stalls
    }

    /// Renewals whose table rewrite was delayed by a fault (started late
    /// but did complete). Monotone over the manager's lifetime.
    pub fn refresh_delays(&self) -> u64 {
        self.refresh_delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Qarma64;
    use bp_faults::{FaultPlan, FaultStats};

    fn cipher() -> Qarma64 {
        Qarma64::from_seed(0xA5A5)
    }

    fn table(config: KeysTableConfig) -> KeysTable {
        KeysTable::new(config).expect("valid test geometry")
    }

    fn manager(
        slot_count: usize,
        config: KeysTableConfig,
        threshold: u64,
        seed: u64,
    ) -> KeyManager {
        KeyManager::new(Box::new(cipher()), slot_count, config, threshold, seed)
            .expect("valid test configuration")
    }

    #[test]
    fn paper_geometry_263_cycles() {
        let t = table(KeysTableConfig::paper_default());
        assert_eq!(t.config().keys_per_word(), 4);
        assert_eq!(t.config().words(), 256);
        assert_eq!(t.refresh_duration(), 263);
        assert_eq!(t.config().storage_bytes(), 1280); // 1.25 KB per table
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        assert_eq!(
            KeysTable::new(KeysTableConfig::with_entries(0)).err(),
            Some(ConfigError::zero("keys table entries"))
        );
        assert!(KeysTableConfig::checked(16, 0, 40, 7).is_err());
        assert!(KeysTableConfig::checked(16, 65, 80, 7).is_err());
        // The silently-divides-toward-zero hazard: key wider than a word.
        assert_eq!(
            KeysTableConfig::checked(16, 48, 40, 7).err(),
            Some(ConfigError::inconsistent(
                "keys table geometry",
                "a word must hold at least one key (word_bits >= key_bits)",
            ))
        );
        assert!(KeysTableConfig::checked(1024, 10, 40, 7).is_ok());
    }

    #[test]
    fn keys_per_word_is_total_even_unvalidated() {
        // An unvalidated struct literal must not divide toward zero (or by
        // zero) in derived quantities.
        let bad = KeysTableConfig {
            entries: 16,
            key_bits: 48,
            word_bits: 40,
            pipeline_fill: 7,
        };
        assert_eq!(bad.keys_per_word(), 1);
        assert_eq!(bad.words(), 16);
        let zero = KeysTableConfig { key_bits: 0, ..bad };
        assert!(zero.keys_per_word() >= 1);
    }

    #[test]
    fn keys_fit_width() {
        let mut t = table(KeysTableConfig::paper_default());
        let seed = IndexSeed::derive(Asid::new(1), Vmid::new(0), 42);
        t.begin_refresh(&cipher(), seed, 0, 0);
        for i in 0..1024 {
            assert!(t.key_at(i, 10_000) < (1 << 10));
        }
    }

    #[test]
    fn refresh_changes_keys() {
        let mut t = table(KeysTableConfig::paper_default());
        let c = cipher();
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 1), 0, 0);
        let before: Vec<u64> = (0..1024).map(|i| t.key_at(i, 10_000)).collect();
        t.begin_refresh(
            &c,
            IndexSeed::derive(Asid::new(1), Vmid::new(0), 2),
            4096,
            20_000,
        );
        let after: Vec<u64> = (0..1024).map(|i| t.key_at(i, 40_000)).collect();
        let differing = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(differing > 900, "only {differing} of 1024 keys changed");
    }

    #[test]
    fn non_stalling_refresh_serves_stale_keys() {
        let mut t = table(KeysTableConfig::paper_default());
        let c = cipher();
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 1), 0, 0);
        // Let the first refresh complete, remember a late entry's key.
        let old_last = t.key_at(1023, 100_000);
        // Start a second refresh at cycle 200_000.
        t.begin_refresh(
            &c,
            IndexSeed::derive(Asid::new(1), Vmid::new(0), 2),
            999,
            200_000,
        );
        // Entry 1023 lives in the last word, rewritten at 200_000 + 7 + 256.
        assert_eq!(t.key_at(1023, 200_001), old_last, "stale key expected");
        assert!(t.refresh_in_flight(200_001));
        assert!(!t.refresh_in_flight(201_000));
        // Entry 0 is rewritten right after the pipeline fill.
        let _ = t.key_at(0, 200_000 + 8);
        assert!(t.stale_hits() >= 1);
        // After completion the keys are the new generation's: with 8 entries
        // of 10-bit keys compared, an accidental full match is ~2^-80.
        let old_tail: Vec<u64> = (1016..1024).map(|i| t.key_at(i, 199_999)).collect();
        let new_tail: Vec<u64> = (1016..1024).map(|i| t.key_at(i, 200_000 + 263)).collect();
        assert_ne!(new_tail, old_tail, "keys should change across refresh");
    }

    #[test]
    fn early_words_rewrite_before_late_words() {
        let mut t = table(KeysTableConfig::paper_default());
        let c = cipher();
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(7), Vmid::new(0), 3), 0, 0);
        let now = 7 + 1; // first word rewritten, rest stale
        let stale_before = t.stale_hits();
        let _ = t.key_at(0, now);
        assert_eq!(t.stale_hits(), stale_before, "entry 0 must be fresh");
        let _ = t.key_at(1023, now);
        assert_eq!(t.stale_hits(), stale_before + 1, "entry 1023 must be stale");
    }

    /// Satellite coverage: at *every* cycle of the 263-cycle paper-default
    /// refresh, every entry must read as its old key while its word has not
    /// been rewritten and as its new key afterwards.
    #[test]
    fn mid_refresh_reads_old_key_until_word_rewritten_every_cycle() {
        let cfg = KeysTableConfig::paper_default();
        let mut t = table(cfg);
        let c = cipher();
        // Generation 1, fully rewritten by cycle 100_000.
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 1), 0, 0);
        let old: Vec<u64> = (0..cfg.entries).map(|i| t.key_at(i, 100_000)).collect();
        // Generation 2 starts at `start`.
        let start: Cycle = 200_000;
        t.begin_refresh(
            &c,
            IndexSeed::derive(Asid::new(1), Vmid::new(0), 2),
            777,
            start,
        );
        // Capture the new generation's values from a clone (reading the
        // original would interleave with the sweep below).
        let mut done = t.clone();
        let new: Vec<u64> = (0..cfg.entries)
            .map(|i| done.key_at(i, start + t.refresh_duration()))
            .collect();
        assert_ne!(old, new);
        let per_word = cfg.keys_per_word();
        for offset in 0..=t.refresh_duration() {
            let now = start + offset;
            for entry in (0..cfg.entries).step_by(7) {
                let word_idx = (entry / per_word) as Cycle;
                let rewritten_at = cfg.pipeline_fill + word_idx + 1;
                let expect = if offset < rewritten_at {
                    old[entry]
                } else {
                    new[entry]
                };
                assert_eq!(
                    t.key_at(entry, now),
                    expect,
                    "entry {entry} at offset {offset} (word rewritten at {rewritten_at})"
                );
            }
        }
        // After the sweep the refresh has completed and been retired.
        assert!(!t.refresh_in_flight(start + t.refresh_duration()));
    }

    /// Satellite coverage: a second `begin_refresh` issued mid-refresh must
    /// snapshot the architecturally *visible* keys (a mix of the two prior
    /// generations), not either generation wholesale.
    #[test]
    fn overlapping_refresh_snapshots_visible_mix() {
        let cfg = KeysTableConfig::paper_default();
        let mut t = table(cfg);
        let c = cipher();
        // Generation 1 (complete): values A.
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 1), 0, 0);
        let a: Vec<u64> = (0..cfg.entries).map(|i| t.key_at(i, 100_000)).collect();
        // Generation 2 starts at `g2`; values B once complete.
        let g2: Cycle = 200_000;
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 2), 55, g2);
        let mut b_probe = t.clone();
        let b: Vec<u64> = (0..cfg.entries)
            .map(|i| b_probe.key_at(i, g2 + t.refresh_duration()))
            .collect();
        // Generation 3 starts 100 cycles in: words 0..93 hold B, the rest A.
        let g3 = g2 + 100;
        t.begin_refresh(&c, IndexSeed::derive(Asid::new(1), Vmid::new(0), 3), 99, g3);
        let per_word = cfg.keys_per_word();
        // One cycle after g3 nothing of generation 3 is visible yet, so every
        // entry must still read as the pre-g3 visible mix.
        for entry in 0..cfg.entries {
            let word_idx = (entry / per_word) as Cycle;
            let rewritten_by_g2 = g2 + cfg.pipeline_fill + word_idx < g3;
            let expect = if rewritten_by_g2 { b[entry] } else { a[entry] };
            assert_eq!(
                t.key_at(entry, g3 + 1),
                expect,
                "entry {entry}: old generation must be the visible mix \
                 (g2 rewrote it: {rewritten_by_g2})"
            );
        }
        // Both phases of the mix must actually occur in this geometry.
        assert!(
            (0..cfg.entries).any(|e| (e / per_word) as Cycle + cfg.pipeline_fill + 1 + g2 <= g3)
        );
        assert!((0..cfg.entries).any(|e| (e / per_word) as Cycle + cfg.pipeline_fill + 1 + g2 > g3));
    }

    #[test]
    fn access_counter_triggers_refresh_request() {
        let mut t = table(KeysTableConfig::with_entries(4));
        assert!(!t.needs_refresh(5));
        for _ in 0..5 {
            let _ = t.key_at(0, 0);
        }
        assert!(t.needs_refresh(5));
        t.begin_refresh(
            &cipher(),
            IndexSeed::derive(Asid::new(0), Vmid::new(0), 0),
            0,
            0,
        );
        assert!(!t.needs_refresh(5), "counter must reset on refresh");
    }

    #[test]
    fn generation_increments() {
        let mut t = table(KeysTableConfig::with_entries(16));
        assert_eq!(t.generation(), 0);
        t.begin_refresh(
            &cipher(),
            IndexSeed::derive(Asid::new(0), Vmid::new(0), 0),
            0,
            0,
        );
        assert_eq!(t.generation(), 1);
    }

    #[test]
    fn out_of_bounds_entry_degrades_gracefully() {
        let mut t = table(KeysTableConfig::with_entries(16));
        let in_range = t.key_at(3, 0);
        assert_eq!(t.key_at(16 + 3, 0), in_range, "folded into range");
        assert_eq!(t.anomalous_reads(), 1);
        let _ = t.key_at(usize::MAX, 0);
        assert_eq!(t.anomalous_reads(), 2);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut t = table(KeysTableConfig::paper_default());
        t.begin_refresh(
            &cipher(),
            IndexSeed::derive(Asid::new(1), Vmid::new(0), 5),
            0,
            0,
        );
        let before = t.key_at(42, 10_000);
        t.inject_bit_flip(42, 3);
        let after = t.key_at(42, 10_000);
        assert_eq!((before ^ after).count_ones(), 1);
        assert!(after < (1 << 10), "flip stays inside the key width");
        t.inject_bit_flip(42, 3);
        assert_eq!(t.key_at(42, 10_000), before, "second flip restores");
    }

    #[test]
    fn forced_counter_saturation_triggers_renewal() {
        let mut t = table(KeysTableConfig::with_entries(8));
        t.force_access_count(1 << 30);
        assert!(t.needs_refresh(PAPER_RENEWAL_THRESHOLD));
    }

    #[test]
    fn index_seed_differs_across_asids() {
        let a = IndexSeed::derive(Asid::new(1), Vmid::new(0), 99);
        let b = IndexSeed::derive(Asid::new(2), Vmid::new(0), 99);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn index_seed_depends_on_hardware_rand() {
        let a = IndexSeed::derive(Asid::new(1), Vmid::new(0), 1);
        let b = IndexSeed::derive(Asid::new(1), Vmid::new(0), 2);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn key_manager_rejects_bad_configs() {
        assert!(KeyManager::new(
            Box::new(cipher()),
            0,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            1,
        )
        .is_err());
        assert!(KeyManager::new(
            Box::new(cipher()),
            4,
            KeysTableConfig::paper_default(),
            0,
            1,
        )
        .is_err());
        assert!(KeyManager::new(
            Box::new(cipher()),
            4,
            KeysTableConfig::with_entries(0),
            PAPER_RENEWAL_THRESHOLD,
            1,
        )
        .is_err());
    }

    #[test]
    fn key_manager_renews_per_slot_independently() {
        let mut km = manager(
            4,
            KeysTableConfig::with_entries(64),
            PAPER_RENEWAL_THRESHOLD,
            7,
        );
        let done = km.renew(2, Asid::new(5), Vmid::new(0), 1000);
        assert!(done > 1000);
        assert_eq!(km.slot(2).table().generation(), 1);
        assert_eq!(km.slot(0).table().generation(), 0, "other slots untouched");
        assert_ne!(km.content_key(2), 0);
        assert_eq!(km.content_key(0), 0);
    }

    #[test]
    fn key_manager_counter_renewal() {
        let mut km = manager(1, KeysTableConfig::with_entries(8), 4, 9);
        let mut renewed_count = 0;
        for i in 0..20u64 {
            let (_k, renewed) = km.index_key(0, i, Asid::new(1), Vmid::new(0), i * 10);
            if renewed {
                renewed_count += 1;
            }
        }
        assert!(
            renewed_count >= 4,
            "threshold 4 over 20 accesses: {renewed_count}"
        );
    }

    #[test]
    fn same_pc_slice_same_key_between_renewals() {
        let mut km = manager(
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            11,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        let (k1, _) = km.index_key(0, 0x1234, Asid::new(3), Vmid::new(1), 5000);
        let (k2, _) = km.index_key(0, 0x1234, Asid::new(3), Vmid::new(1), 6000);
        assert_eq!(k1, k2);
    }

    #[test]
    fn renewal_changes_index_keys() {
        let mut km = manager(
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            13,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        let keys_a: Vec<u64> = (0..64)
            .map(|pc| km.index_key(0, pc, Asid::new(3), Vmid::new(1), 5000).0)
            .collect();
        km.renew(0, Asid::new(3), Vmid::new(1), 10_000);
        let keys_b: Vec<u64> = (0..64)
            .map(|pc| km.index_key(0, pc, Asid::new(3), Vmid::new(1), 20_000).0)
            .collect();
        assert_ne!(keys_a, keys_b);
    }

    #[test]
    fn out_of_range_slot_is_folded() {
        let mut km = manager(
            2,
            KeysTableConfig::with_entries(16),
            PAPER_RENEWAL_THRESHOLD,
            3,
        );
        // Folds to slot 1; must not panic and must behave like slot 1.
        let done = km.renew(5, Asid::new(1), Vmid::new(0), 100);
        assert!(done > 100);
        assert_eq!(km.slot(1).table().generation(), 1);
        let _ = km.index_key(7, 0xAB, Asid::new(1), Vmid::new(0), 200);
    }

    #[test]
    fn key_flip_fault_corrupts_exactly_the_read_entry() {
        let mut km = manager(
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            21,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        let clean: Vec<u64> = (0..64)
            .map(|pc| km.index_key(0, pc, Asid::new(3), Vmid::new(1), 5000).0)
            .collect();
        // Flip on every key read: each re-read entry differs by one bit from
        // its previous value.
        km.set_fault_injector(Some(FaultInjector::from_plan(
            FaultPlan::new(17).with_key_bit_flips(1),
        )));
        let faulted: Vec<u64> = (0..64)
            .map(|pc| km.index_key(0, pc, Asid::new(3), Vmid::new(1), 6000).0)
            .collect();
        for (c, f) in clean.iter().zip(&faulted) {
            assert_eq!((c ^ f).count_ones(), 1, "one persistent bit flip per read");
            assert!(*f < (1 << 10), "corrupted key stays in width");
        }
    }

    #[test]
    fn dropped_refresh_keeps_stale_keys_but_reports_nominal_timing() {
        let mut km = manager(
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            23,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        let gen_before = km.slot(0).table().generation();
        // Drop every refresh request from now on.
        km.set_fault_injector(Some(FaultInjector::from_plan(
            FaultPlan::new(5).with_refresh_drops(1),
        )));
        let done = km.renew(0, Asid::new(3), Vmid::new(1), 10_000);
        assert_eq!(done, 10_000 + 263, "acknowledged timing is nominal");
        assert_eq!(
            km.slot(0).table().generation(),
            gen_before,
            "rewrite was lost"
        );
    }

    #[test]
    fn delayed_refresh_extends_stale_window_only() {
        let mut km = manager(
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            29,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        let (old_key, _) = km.index_key(0, 0x77, Asid::new(3), Vmid::new(1), 5000);
        km.set_fault_injector(Some(FaultInjector::from_plan(
            FaultPlan::new(5).with_refresh_delays(1, 10_000),
        )));
        let done = km.renew(0, Asid::new(3), Vmid::new(1), 20_000);
        assert_eq!(done, 20_000 + 263, "acknowledged timing is nominal");
        // At the nominal completion time the rewrite is still 10_000 cycles
        // behind: the old key is still being served.
        let (key, _) = km.index_key(0, 0x77, Asid::new(3), Vmid::new(1), 20_000 + 263);
        assert_eq!(key, old_key, "stale key during the delayed rewrite");
        // Eventually the new generation lands.
        let (late, _) = km.index_key(0, 0x77, Asid::new(3), Vmid::new(1), 40_000);
        assert_eq!(km.slot(0).table().generation(), 2);
        let _ = late;
    }

    #[test]
    fn refresh_stall_and_delay_counters_track_dispositions() {
        let mut km = manager(
            2,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            41,
        );
        assert_eq!((km.refresh_stalls(), km.refresh_delays()), (0, 0));
        // Fault-free renewals count nothing.
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        assert_eq!((km.refresh_stalls(), km.refresh_delays()), (0, 0));
        // Dropped rewrites count as stalls, and only as stalls.
        km.set_fault_injector(Some(FaultInjector::from_plan(
            FaultPlan::new(5).with_refresh_drops(1),
        )));
        let d1 = km.renew(0, Asid::new(3), Vmid::new(1), 10_000);
        let d2 = km.renew(1, Asid::new(4), Vmid::new(1), 11_000);
        assert_eq!((km.refresh_stalls(), km.refresh_delays()), (2, 0));
        // Counting must not perturb the acknowledged (nominal) timing.
        assert_eq!(d1, 10_000 + 263);
        assert_eq!(d2, 11_000 + 263);
        // Delayed rewrites count as delays, and only as delays.
        km.set_fault_injector(Some(FaultInjector::from_plan(
            FaultPlan::new(7).with_refresh_delays(1, 5_000),
        )));
        let d3 = km.renew(0, Asid::new(3), Vmid::new(1), 20_000);
        assert_eq!((km.refresh_stalls(), km.refresh_delays()), (2, 1));
        assert_eq!(d3, 20_000 + 263);
    }

    #[test]
    fn counter_saturation_fault_forces_renewal() {
        let mut km = manager(
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            31,
        );
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        km.set_fault_injector(Some(FaultInjector::from_plan(
            FaultPlan::new(5).with_counter_saturation(10),
        )));
        let mut renewals = 0;
        for i in 0..100u64 {
            let (_, renewed) = km.index_key(0, i, Asid::new(3), Vmid::new(1), 5000 + i);
            if renewed {
                renewals += 1;
            }
        }
        assert_eq!(renewals, 10, "every 10th access saturates and renews");
    }

    #[test]
    fn fault_free_manager_has_zero_fault_stats() {
        let mut km = manager(
            1,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            37,
        );
        let inj = FaultInjector::from_plan(FaultPlan::new(0));
        km.set_fault_injector(Some(inj.clone()));
        km.renew(0, Asid::new(3), Vmid::new(1), 0);
        for i in 0..50u64 {
            let _ = km.index_key(0, i, Asid::new(3), Vmid::new(1), 1000 + i);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn renew_emits_nominal_refresh_span_under_every_fault_disposition() {
        use bp_common::telemetry::EventKind;

        let plans = [
            None,
            Some(FaultPlan::new(1).with_refresh_delays(1, 999)),
            Some(FaultPlan::new(2).with_refresh_drops(1)),
        ];
        for plan in plans {
            let mut km = manager(
                2,
                KeysTableConfig::paper_default(),
                PAPER_RENEWAL_THRESHOLD,
                9,
            );
            let sink = bp_common::Telemetry::ring(16);
            km.set_telemetry(sink.clone());
            km.set_fault_injector(plan.map(FaultInjector::from_plan));
            let duration = km.slot(1).table().refresh_duration();
            let done = km.renew(1, Asid::new(3), Vmid::new(0), 500);
            let events = sink.drain();
            assert_eq!(events.len(), 1, "one span per renewal");
            let e = events[0];
            assert_eq!((e.scope, e.name, e.cycle), ("keys", "refresh", 500));
            assert_eq!(
                e.kind,
                EventKind::Span {
                    start: 500,
                    end: 500 + duration,
                    slot: 1,
                },
                "span must cover the nominal window regardless of faults"
            );
            assert_eq!(done, e.span_bounds().unwrap().1);
        }
    }
}
