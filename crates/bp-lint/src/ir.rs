//! A lightweight item/expression IR on top of the token stream.
//!
//! The taint pass needs more structure than a flat token list — function
//! boundaries, parameter names and types, `let`-binding spans — but far
//! less than a real Rust parser: no type inference, no trait resolution,
//! no macro expansion. This module recovers exactly that middle layer:
//!
//! * every `fn` item, with its parameter list parsed into
//!   `(name, type identifiers)` pairs and the token span of its body;
//! * every `let` statement inside a body, with the bound names, the
//!   optional type-annotation identifiers, and the initializer span;
//! * every plain `name = expr;` reassignment of a local.
//!
//! Spans are half-open `[start, end)` index ranges into the lexed token
//! vector, so passes can re-walk any region with full line fidelity.
//! The extraction is deliberately permissive: code it cannot parse (odd
//! macros, exotic patterns) simply yields no IR, which makes the taint
//! pass silent there rather than wrong.

use crate::lexer::{Tok, Token};

/// One function parameter: its binding name and the identifiers that make
/// up its type (path segments, generic arguments — order preserved).
#[derive(Debug, Clone)]
pub struct Param {
    /// The bound name (`self` for methods).
    pub name: String,
    /// Every identifier appearing in the type annotation.
    pub type_idents: Vec<String>,
}

/// One `let` binding inside a function body.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Names bound by the pattern (one for `let x`, several for tuples).
    pub names: Vec<String>,
    /// Identifiers of the optional type annotation.
    pub type_idents: Vec<String>,
    /// Token span of the initializer expression (empty when there is no
    /// `=`, as in `let x;`).
    pub init: (usize, usize),
    /// Line of the `let` keyword.
    pub line: u32,
}

/// One `name = expr;` reassignment of a plain local.
#[derive(Debug, Clone)]
pub struct Assign {
    /// The assigned name.
    pub name: String,
    /// Token span of the right-hand side.
    pub rhs: (usize, usize),
    /// Line of the assignment.
    pub line: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Parsed parameters.
    pub params: Vec<Param>,
    /// Token span of the body, *inside* the braces.
    pub body: (usize, usize),
    /// `let` bindings in the body, in source order.
    pub lets: Vec<LetBinding>,
    /// Reassignments in the body, in source order.
    pub assigns: Vec<Assign>,
}

/// Extracts every function (with body) from a token stream.
pub fn functions(toks: &[Token]) -> Vec<Function> {
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if ident_is(toks, i, "fn") {
            if let Some(f) = parse_fn(toks, i) {
                out.push(f);
            }
        }
        i += 1;
    }
    out
}

fn ident_is(toks: &[Token], i: usize, s: &str) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Ident(x)) if x == s)
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Finds the index of the matching closer for the opener at `open`.
fn matching(toks: &[Token], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if punct(toks, j, o) {
            depth += 1;
        } else if punct(toks, j, c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Parses one `fn` starting at the `fn` keyword; `None` for bodyless
/// declarations (trait methods, extern fns) or anything unparsable.
fn parse_fn(toks: &[Token], at: usize) -> Option<Function> {
    let name = ident(toks, at + 1)?.to_string();
    let line = toks[at].line;
    // Find the parameter `(`, skipping generics `<...>`.
    let mut j = at + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') if angle <= 0 => break,
            Tok::Punct('{') | Tok::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    let open_paren = j;
    let close_paren = matching(toks, open_paren, '(', ')')?;
    let params = parse_params(toks, open_paren + 1, close_paren);
    // Find the body `{` (skipping the return type and any `where` clause);
    // a `;` first means a bodyless declaration.
    let mut k = close_paren + 1;
    let mut angle = 0i32;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') if angle <= 0 => break,
            Tok::Punct(';') if angle <= 0 => return None,
            _ => {}
        }
        k += 1;
    }
    let open_brace = k;
    let close_brace = matching(toks, open_brace, '{', '}')?;
    let body = (open_brace + 1, close_brace);
    let (lets, assigns) = parse_body(toks, body);
    Some(Function {
        name,
        line,
        params,
        body,
        lets,
        assigns,
    })
}

/// Parses a parameter list between `[from, to)` (the parens excluded).
fn parse_params(toks: &[Token], from: usize, to: usize) -> Vec<Param> {
    let mut out = Vec::new();
    // Split on top-level commas.
    let mut start = from;
    let mut depth = 0i32;
    let mut j = from;
    while j <= to {
        let at_end = j == to;
        let at_comma = !at_end && depth == 0 && punct(toks, j, ',');
        if at_end || at_comma {
            if let Some(p) = parse_one_param(toks, start, j) {
                out.push(p);
            }
            start = j + 1;
        } else if !at_end {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    out
}

/// Parses one `pattern: Type` parameter (or a bare `self` receiver).
fn parse_one_param(toks: &[Token], from: usize, to: usize) -> Option<Param> {
    // The binding name: the first identifier that is not a qualifier.
    let mut name = None;
    let mut j = from;
    while j < to {
        match ident(toks, j) {
            Some("mut") | Some("ref") => j += 1,
            Some(s) => {
                name = Some(s.to_string());
                j += 1;
                break;
            }
            None => j += 1, // leading `&`, lifetimes were dropped by the lexer
        }
    }
    let name = name?;
    // Everything after the `:` is the type.
    let mut type_idents = Vec::new();
    let mut saw_colon = false;
    while j < to {
        if !saw_colon {
            if punct(toks, j, ':') {
                saw_colon = true;
            }
        } else if let Some(s) = ident(toks, j) {
            type_idents.push(s.to_string());
        }
        j += 1;
    }
    Some(Param { name, type_idents })
}

/// Token spans of nested `fn` items (keyword through closing brace,
/// inclusive) inside a body span. Sink scans use this to stay inside one
/// function's own code.
pub fn nested_fn_spans(toks: &[Token], body: (usize, usize)) -> Vec<(usize, usize)> {
    let (from, to) = body;
    let mut out = Vec::new();
    let mut i = from;
    while i < to {
        if ident_is(toks, i, "fn") {
            if let Some(f) = parse_fn(toks, i) {
                out.push((i, f.body.1 + 1));
                i = f.body.1.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Extracts `let` bindings and plain reassignments from a body span.
fn parse_body(toks: &[Token], body: (usize, usize)) -> (Vec<LetBinding>, Vec<Assign>) {
    let (from, to) = body;
    let mut lets = Vec::new();
    let mut assigns = Vec::new();
    let mut i = from;
    while i < to {
        // A nested `fn` is its own IR function; its bindings must not
        // leak into the enclosing body's environment.
        if ident_is(toks, i, "fn") {
            if let Some(f) = parse_fn(toks, i) {
                i = f.body.1.max(i + 1);
                continue;
            }
        }
        if ident_is(toks, i, "let") {
            // `if let` / `while let` heads end at the body `{`, not at a
            // `;`; treating them as statements would swallow the branch
            // body into the initializer span.
            let head_only = i > from && matches!(ident(toks, i - 1), Some("if") | Some("while"));
            if let Some((b, next)) = parse_let(toks, i, to, head_only) {
                lets.push(b);
                i = next;
                continue;
            }
        }
        // `name = expr ;` — a plain reassignment: an identifier followed by
        // a single `=` (not `==`, `=>`, `+=`-style, or a comparison).
        if let Some(s) = ident(toks, i) {
            let is_plain_target = i == from
                || matches!(toks.get(i - 1).map(|t| &t.tok),
                    Some(Tok::Punct(p)) if matches!(p, ';' | '{' | '}'));
            if is_plain_target
                && punct(toks, i + 1, '=')
                && !punct(toks, i + 2, '=')
                && !matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Ident(k)) if is_keyword(k))
            {
                let rhs_start = i + 2;
                let rhs_end = stmt_end(toks, rhs_start, to);
                assigns.push(Assign {
                    name: s.to_string(),
                    rhs: (rhs_start, rhs_end),
                    line: toks[i].line,
                });
                i = rhs_end;
                continue;
            }
        }
        i += 1;
    }
    (lets, assigns)
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "while" | "for" | "loop" | "match" | "return" | "break" | "continue"
    )
}

/// Index of the body `{` (or a stray `;`) ending an `if let`/`while let`
/// head that starts at `from`.
fn head_end(toks: &[Token], from: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < to {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') | Tok::Punct(';') if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    to
}

/// Index just past the statement starting at `from` (the `;` at depth 0,
/// or `to`).
fn stmt_end(toks: &[Token], from: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < to {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    to
}

/// Parses one `let` starting at the `let` keyword. Returns the binding
/// and the resume index (past the `;`, or at the body `{` for
/// `head_only` — an `if let`/`while let` head).
fn parse_let(toks: &[Token], at: usize, to: usize, head_only: bool) -> Option<(LetBinding, usize)> {
    let line = toks[at].line;
    let end = if head_only {
        head_end(toks, at + 1, to)
    } else {
        stmt_end(toks, at + 1, to)
    };
    // Split at the first top-level `=` (skipping `==` and closures is not
    // needed: a pattern cannot contain either).
    let mut eq = None;
    let mut depth = 0i32;
    let mut j = at + 1;
    while j < end {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth -= 1,
            Tok::Punct('=') if depth <= 0 && !punct(toks, j + 1, '=') => {
                eq = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    // Pattern and optional type annotation sit between `let` and `=`.
    let pat_end = eq.unwrap_or(end);
    let mut names = Vec::new();
    let mut type_idents = Vec::new();
    let mut saw_colon = false;
    let mut k = at + 1;
    let mut pat_depth = 0i32;
    while k < pat_end {
        match &toks[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => pat_depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => pat_depth -= 1,
            Tok::Punct(':') if pat_depth <= 0 => saw_colon = true,
            Tok::Ident(s) if s != "mut" && s != "ref" && s != "_" => {
                if saw_colon {
                    type_idents.push(s.clone());
                } else if !s.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // Uppercase idents in pattern position are enum
                    // constructors / path segments (`Some`, `Ok`,
                    // `State::Idle`), not bound names.
                    names.push(s.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    if names.is_empty() {
        return None;
    }
    let init = match eq {
        // `end` is past the `;` for statements (exclude it) and exactly
        // at the `{` for `if let` heads (already exclusive).
        Some(e) if head_only => (e + 1, end),
        Some(e) => (e + 1, end.saturating_sub(1).max(e + 1)),
        None => (pat_end, pat_end),
    };
    Some((
        LetBinding {
            names,
            type_idents,
            init,
            line,
        },
        end,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<Function> {
        functions(&lex(src).tokens)
    }

    #[test]
    fn extracts_fn_params_and_body() {
        let fs = fns("pub fn f(table: &KeysTable, n: usize) -> u64 { n as u64 }\n");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "f");
        assert_eq!(fs[0].params.len(), 2);
        assert_eq!(fs[0].params[0].name, "table");
        assert!(fs[0].params[0].type_idents.contains(&"KeysTable".into()));
        assert_eq!(fs[0].params[1].name, "n");
    }

    #[test]
    fn extracts_let_bindings_with_initializers() {
        let fs = fns("fn f(k: u64) -> u64 {\n    let material = k ^ 1;\n    let (a, b) = (material, 2);\n    a + b\n}\n");
        assert_eq!(fs[0].lets.len(), 2);
        assert_eq!(fs[0].lets[0].names, vec!["material".to_string()]);
        assert_eq!(fs[0].lets[1].names, vec!["a".to_string(), "b".to_string()]);
        assert!(fs[0].lets[0].init.1 > fs[0].lets[0].init.0);
    }

    #[test]
    fn extracts_reassignments() {
        let fs = fns("fn f() {\n    let mut x = 0;\n    x = secret();\n}\n");
        assert_eq!(fs[0].assigns.len(), 1);
        assert_eq!(fs[0].assigns[0].name, "x");
    }

    #[test]
    fn generic_fns_and_where_clauses_parse() {
        let fs = fns(
            "fn g<C: Codec>(c: &mut C, seed: IndexSeed) -> u64 where C: Sized {\n    let x = seed.mix();\n    x\n}\n",
        );
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].params[1].name, "seed");
        assert!(fs[0].params[1].type_idents.contains(&"IndexSeed".into()));
        assert_eq!(fs[0].lets.len(), 1);
    }

    #[test]
    fn bodyless_declarations_are_skipped() {
        let fs = fns("trait T { fn decl(&self, x: u64) -> u64; }\nfn real() {}\n");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "real");
    }

    #[test]
    fn nested_fns_are_both_found() {
        let fs = fns("fn outer() {\n    fn inner(keys: &[u64]) {}\n    inner(&[]);\n}\n");
        // Outer is found first; inner is found on the rescan.
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].name, "outer");
    }

    #[test]
    fn let_else_does_not_panic() {
        let fs = fns(
            "fn f(o: Option<u64>) -> u64 {\n    let Some(v) = o else { return 0; };\n    v\n}\n",
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].lets[0].names.contains(&"v".to_string()) || !fs[0].lets.is_empty());
    }
}
