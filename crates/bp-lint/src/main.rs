//! `bp_lint` — the command-line front end.
//!
//! ```text
//! bp_lint [--root DIR] [--format text|json] [--baseline FILE]
//!         [--deny-new] [--write-baseline] [--list-rules] [--budgets]
//! ```
//!
//! `--budgets` prints the deterministic computed-vs-declared storage
//! table from `budgets.toml` and exits 1 on any divergence — the CI
//! `budget-drift` step runs exactly this.
//!
//! Exit codes: `0` clean (every finding fixed, waived, or baselined, and
//! no stale baseline entries), `1` violations, `2` usage or I/O error.
//! The default mode already denies new findings; `--deny-new` is the
//! explicit spelling CI uses so intent is visible in the workflow file.

use std::path::PathBuf;
use std::process::ExitCode;

use bp_lint::{load_baseline, run_lint, Config, LintError};

struct Cli {
    root: Option<PathBuf>,
    format: String,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    list_rules: bool,
    budgets: bool,
}

fn parse_args() -> Result<Cli, LintError> {
    let mut cli = Cli {
        root: None,
        format: "text".to_string(),
        baseline: None,
        write_baseline: false,
        list_rules: false,
        budgets: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a value".to_string()))?;
                cli.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = args
                    .next()
                    .ok_or_else(|| LintError::Usage("--format needs a value".to_string()))?;
                if v != "text" && v != "json" {
                    return Err(LintError::Usage(format!(
                        "--format must be `text` or `json`, got `{v}`"
                    )));
                }
                cli.format = v;
            }
            "--baseline" => {
                let v = args
                    .next()
                    .ok_or_else(|| LintError::Usage("--baseline needs a value".to_string()))?;
                cli.baseline = Some(PathBuf::from(v));
            }
            // Default behavior; accepted so CI invocations self-document.
            "--deny-new" => {}
            "--write-baseline" => cli.write_baseline = true,
            "--list-rules" => cli.list_rules = true,
            "--budgets" => cli.budgets = true,
            other => {
                return Err(LintError::Usage(format!(
                    "unknown argument `{other}` (try --root, --format, --baseline, --deny-new, --write-baseline, --list-rules, --budgets)"
                )));
            }
        }
    }
    Ok(cli)
}

/// Ascends from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_root() -> Result<PathBuf, LintError> {
    let mut dir = std::env::current_dir().map_err(|e| LintError::Io(e.to_string()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(LintError::Usage(
                "no workspace root found above the current directory (pass --root)".to_string(),
            ));
        }
    }
}

fn run() -> Result<ExitCode, LintError> {
    let cli = parse_args()?;
    if cli.list_rules {
        for rule in bp_lint::rules::ALL_RULES {
            println!("{rule}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    let root = match cli.root {
        Some(r) => r,
        None => find_root()?,
    };
    if cli.budgets {
        let manifest_path = root.join("budgets.toml");
        let manifest = std::fs::read_to_string(&manifest_path)
            .map_err(|e| LintError::Io(format!("{}: {e}", manifest_path.display())))?;
        let mut sources = Vec::new();
        for rel in bp_lint::rules::budget::listed_files(&manifest) {
            let abs = root.join(&rel);
            let src = std::fs::read_to_string(&abs)
                .map_err(|e| LintError::Io(format!("{}: {e}", abs.display())))?;
            sources.push((rel, src));
        }
        let (table, clean) = bp_lint::rules::budget::budget_table(&manifest, &sources);
        print!("{table}");
        return Ok(if clean {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    let baseline_path = cli
        .baseline
        .unwrap_or_else(|| root.join("bp-lint.baseline.json"));
    let config = Config::workspace_default(&root);
    let baseline = load_baseline(&baseline_path)?;
    let report = run_lint(&config, &baseline)?;

    if cli.write_baseline {
        let text = bp_lint::baseline::Baseline::render_from(&report.findings);
        std::fs::write(&baseline_path, &text)
            .map_err(|e| LintError::Io(format!("{}: {e}", baseline_path.display())))?;
        eprintln!("bp-lint: wrote baseline to {}", baseline_path.display());
        return Ok(ExitCode::SUCCESS);
    }

    match cli.format.as_str() {
        "json" => print!("{}", report.to_json()),
        _ => print!("{}", report.to_text()),
    }
    if report.is_clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bp-lint: {e}");
            ExitCode::from(2)
        }
    }
}
