//! File classification and `#[cfg(test)]` region tracking.
//!
//! Every invariant `bp-lint` enforces has a *scope*: panic-freedom applies
//! to library code but not to binaries or test modules; the determinism
//! rules apply to simulation/result-producing crates but not to the lint
//! tool itself. This module derives that scope from two things only — the
//! file's path inside the workspace, and the `#[cfg(test)]` / `#[test]`
//! attribute structure inside the file — so the classification is fully
//! deterministic and needs no build-system integration.

use crate::lexer::{Lexed, Tok};

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a crate's library (`src/**` minus binary entry points).
    Lib,
    /// A binary entry point (`src/main.rs` or `src/bin/**`).
    Bin,
}

/// Where a file sits in the workspace.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// The owning crate's directory name (`bp-crypto`, `bench`, ...), or
    /// `"hybp-repro"` for the workspace-root crate.
    pub crate_name: String,
    /// Library or binary target.
    pub kind: FileKind,
}

/// Classifies a workspace-relative path (forward slashes).
///
/// Returns `None` for paths `bp-lint` does not scan at all: integration
/// tests, examples, and benches are test harness code where the library
/// invariants (panic-freedom, determinism of result paths) intentionally
/// do not apply.
pub fn classify(rel: &str) -> Option<FileClass> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (&str, &[&str]) = if parts.first() == Some(&"crates") {
        if parts.len() < 3 {
            return None;
        }
        (parts[1], &parts[2..])
    } else if parts.first() == Some(&"src") {
        ("hybp-repro", &parts[..])
    } else {
        return None;
    };
    if rest.first() != Some(&"src") {
        return None; // tests/, examples/, benches/ are out of scope
    }
    let kind = if rest.contains(&"bin") || rest.last() == Some(&"main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    Some(FileClass {
        crate_name: crate_name.to_string(),
        kind,
    })
}

/// Inclusive 1-based line ranges covered by test-only code.
#[derive(Debug, Default)]
pub struct TestRanges {
    ranges: Vec<(u32, u32)>,
}

impl TestRanges {
    /// Is `line` inside any `#[cfg(test)]` module or `#[test]` function?
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// Computes the test-only line ranges of a lexed file.
///
/// The tracker walks the token stream looking for attributes. An attribute
/// marks the *next item* as test-only when its content mentions `test`
/// without `not` — this covers `#[cfg(test)]`, `#[test]`, and
/// `#[cfg(all(test, ...))]`, while leaving `#[cfg(not(test))]` as
/// production code. The marked item extends to its matching closing brace
/// (or terminating semicolon), so a whole `mod tests { ... }` is skipped
/// in one range.
pub fn test_ranges(lexed: &Lexed) -> TestRanges {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut out = TestRanges::default();
    let mut i = 0usize;
    while i < n {
        if !matches!(toks[i].tok, Tok::Punct('#')) {
            i += 1;
            continue;
        }
        // Attribute: `#[ ... ]` (we ignore inner attributes `#![...]`).
        let mut j = i + 1;
        if j < n && matches!(toks[j].tok, Tok::Punct('!')) {
            j += 1;
        }
        if j >= n || !matches!(toks[j].tok, Tok::Punct('[')) {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        let (content_test, end) = scan_attr(toks, j);
        if !content_test {
            i = end;
            continue;
        }
        // Skip any further attributes (`#[cfg(test)] #[derive(..)] mod t`).
        let mut k = end;
        while k < n && matches!(toks[k].tok, Tok::Punct('#')) {
            let m = k + 1;
            if m < n && matches!(toks[m].tok, Tok::Punct('[')) {
                let (_, e) = scan_attr(toks, m);
                k = e;
            } else {
                break;
            }
        }
        // Consume the item: until `;` at depth 0, or the matching `}` of
        // the first `{` we open.
        let mut depth = 0i32;
        let mut opened = false;
        let mut end_line = attr_start_line;
        while k < n {
            match toks[k].tok {
                Tok::Punct('{') => {
                    depth += 1;
                    opened = true;
                }
                Tok::Punct('}') => {
                    depth -= 1;
                    if opened && depth == 0 {
                        end_line = toks[k].line;
                        k += 1;
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => {
                    end_line = toks[k].line;
                    k += 1;
                    break;
                }
                _ => {}
            }
            end_line = toks[k].line;
            k += 1;
        }
        out.ranges.push((attr_start_line, end_line));
        i = k;
    }
    out
}

/// Scans an attribute whose `[` is at index `open`. Returns (whether the
/// attribute marks test-only code, index just past the closing `]`).
fn scan_attr(toks: &[crate::lexer::Token], open: usize) -> (bool, usize) {
    let n = toks.len();
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut k = open;
    while k < n {
        match &toks[k].tok {
            Tok::Punct('[') | Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            Tok::Ident(s) if s == "test" || s == "tests" => has_test = true,
            Tok::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
        k += 1;
    }
    (has_test && !has_not, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classify_paths() {
        let c = classify("crates/bp-crypto/src/keys.rs");
        assert_eq!(c.map(|c| c.crate_name), Some("bp-crypto".to_string()));
        let b = classify("crates/bench/src/bin/bench_all.rs");
        assert!(matches!(b.map(|c| c.kind), Some(FileKind::Bin)));
        assert!(classify("crates/bench/tests/determinism.rs").is_none());
        assert!(classify("crates/bp-workloads/examples/calibrate.rs").is_none());
        let root = classify("src/lib.rs");
        assert_eq!(root.map(|c| c.crate_name), Some("hybp-repro".to_string()));
    }

    #[test]
    fn cfg_test_module_is_ranged() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn a() { x.unwrap(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        let r = test_ranges(&lexed);
        assert!(!r.contains(1));
        assert!(r.contains(4));
        assert!(!r.contains(6));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n";
        let lexed = lex(src);
        let r = test_ranges(&lexed);
        assert!(!r.contains(2));
    }

    #[test]
    fn test_fn_attribute_is_ranged() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn prod() {}\n";
        let lexed = lex(src);
        let r = test_ranges(&lexed);
        assert!(r.contains(2));
        assert!(!r.contains(3));
    }
}
