//! `storage-budget`: bit-exact verification of predictor storage.
//!
//! HyBP's evaluation (like the STBPU/CIBPU comparisons it follows) only
//! means something if every mechanism is held to the same storage budget.
//! This rule makes that budget a checked-in artifact: `budgets.toml` at
//! the workspace root declares, per predictor configuration, the
//! component bit formulas and the total, written in terms of the *named
//! geometry constants* in the predictor sources. bp-lint then:
//!
//! 1. parses those `const NAME: _ = <integer>;` values out of the listed
//!    source files (textually — the geometry consts are plain literals by
//!    construction, enforced here by failing on anything else);
//! 2. evaluates each component formula and checks the sum equals the
//!    declared `total_bits`;
//! 3. checks any `reference`/`reference_bits` claim against the built-in
//!    table of SNIPPETS.md values for the named configurations, so the
//!    manifest cannot silently drift from the literature numbers;
//! 4. checks `total_bits <= tier_bits` where a tier cap is declared.
//!
//! The manifest dialect is a small TOML subset — `[section]` headers,
//! `key = <int>`, `key = "string"`, `files = ["a", "b"]`, and
//! `component.<name> = "<expr>"` — parsed by hand like the baseline file,
//! keeping the crate std-only. Findings anchor to `budgets.toml` lines so
//! `--deny-new` output points at the drifting declaration.

use std::collections::BTreeMap;

use crate::report::{Finding, Status};

/// SNIPPETS.md reference storage values (bits) for named configurations:
/// the CBP-class TAGE-SC-L 64KB submission lineage.
pub const REFERENCE_BITS: &[(&str, u64)] = &[
    ("cbp64kb.loop", 1248),
    ("cbp64kb.sc", 58190),
    ("cbp64kb.tage", 463917),
    ("cbp64kb.total", 523355),
];

/// One `[section]` of the manifest.
#[derive(Debug, Default)]
struct Section {
    name: String,
    line: u32,
    files: Vec<String>,
    components: Vec<(String, String, u32)>, // (name, expr, line)
    total_bits: Option<(u64, u32)>,
    reference: Option<(String, u32)>,
    reference_bits: Option<(u64, u32)>,
    tier_bits: Option<(u64, u32)>,
}

/// Every file any section lists, deduped and sorted.
pub fn listed_files(manifest: &str) -> Vec<String> {
    let (sections, _) = parse_manifest(manifest);
    let mut out: Vec<String> = sections.iter().flat_map(|s| s.files.clone()).collect();
    out.sort();
    out.dedup();
    out
}

/// Predictor sections every workspace manifest must declare (prefix
/// match: `tage.paper_scl` satisfies `tage.`).
const REQUIRED_SECTIONS: &[&str] = &[
    "bimodal.",
    "btb.",
    "loop_pred.",
    "sc.",
    "tage.",
    "tage_scl.",
];

/// Checks a manifest against the listed sources. Pure: the caller does
/// the I/O (see `storage_budget_pass` in the crate root).
pub fn check(manifest: &str, sources: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (sections, mut parse_errors) = parse_manifest(manifest);
    findings.append(&mut parse_errors);

    for prefix in REQUIRED_SECTIONS {
        if !sections.iter().any(|s| s.name.starts_with(prefix)) {
            findings.push(at(
                1,
                (*prefix).to_string(),
                format!("manifest declares no `[{prefix}*]` section; every predictor must budget its storage"),
            ));
        }
    }

    for section in &sections {
        // Gather consts from this section's files.
        let mut consts: BTreeMap<String, u64> = BTreeMap::new();
        let mut broken = false;
        for file in &section.files {
            let Some((_, src)) = sources.iter().find(|(rel, _)| rel == file) else {
                findings.push(at(
                    section.line,
                    file.clone(),
                    format!(
                        "section `{}` lists `{file}` but it was not readable",
                        section.name
                    ),
                ));
                broken = true;
                continue;
            };
            for (name, value) in parse_consts(src) {
                if let Some(prev) = consts.insert(name.clone(), value) {
                    if prev != value {
                        findings.push(at(
                            section.line,
                            name.clone(),
                            format!(
                                "const `{name}` is defined with different values ({prev} vs \
                                 {value}) across the files of section `{}`",
                                section.name
                            ),
                        ));
                        broken = true;
                    }
                }
            }
        }
        if broken {
            continue;
        }
        // Evaluate components.
        let mut computed: u64 = 0;
        let mut eval_failed = false;
        for (comp, expr, line) in &section.components {
            match eval(expr, &consts) {
                Ok(v) => computed += v,
                Err(why) => {
                    findings.push(at(
                        *line,
                        format!("component.{comp}"),
                        format!(
                            "cannot evaluate component `{comp}` of `{}`: {why}",
                            section.name
                        ),
                    ));
                    eval_failed = true;
                }
            }
        }
        let Some((declared, total_line)) = section.total_bits else {
            findings.push(at(
                section.line,
                section.name.clone(),
                format!("section `{}` declares no `total_bits`", section.name),
            ));
            continue;
        };
        if !eval_failed && !section.components.is_empty() && computed != declared {
            findings.push(at(
                total_line,
                format!("total_bits = {declared}"),
                format!(
                    "section `{}`: computed storage is {computed} bits but the manifest \
                     declares {declared} — the geometry consts and the budget have drifted",
                    section.name
                ),
            ));
        }
        // Reference claims must match the built-in table bit-for-bit.
        if let Some((ref_name, ref_line)) = &section.reference {
            match REFERENCE_BITS.iter().find(|(n, _)| n == ref_name) {
                None => findings.push(at(
                    *ref_line,
                    ref_name.clone(),
                    format!(
                        "section `{}` names unknown reference `{ref_name}`; known: {}",
                        section.name,
                        REFERENCE_BITS
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                )),
                Some((_, expect)) => match section.reference_bits {
                    None => findings.push(at(
                        *ref_line,
                        ref_name.clone(),
                        format!(
                            "section `{}` names reference `{ref_name}` but declares no \
                             `reference_bits` to pin it",
                            section.name
                        ),
                    )),
                    Some((claimed, claim_line)) if claimed != *expect => findings.push(at(
                        claim_line,
                        format!("reference_bits = {claimed}"),
                        format!(
                            "section `{}` claims `{ref_name}` is {claimed} bits; the \
                             SNIPPETS.md reference value is {expect}",
                            section.name
                        ),
                    )),
                    Some(_) => {}
                },
            }
        }
        if let Some((cap, cap_line)) = section.tier_bits {
            if declared > cap {
                findings.push(at(
                    cap_line,
                    format!("tier_bits = {cap}"),
                    format!(
                        "section `{}`: declared {declared} bits exceeds its storage tier \
                         cap of {cap} bits",
                        section.name
                    ),
                ));
            }
        }
    }
    findings
}

/// Renders the deterministic computed-vs-declared table for `--budgets`
/// (the CI `budget-drift` step). Returns the table text and whether every
/// section checks out (`check` findings decide — the table is advisory
/// formatting around the same verdict).
pub fn budget_table(manifest: &str, sources: &[(String, String)]) -> (String, bool) {
    let (sections, _) = parse_manifest(manifest);
    let findings = check(manifest, sources);
    let mut out = String::new();
    out.push_str("section                   computed    declared  status\n");
    for section in &sections {
        let mut consts: BTreeMap<String, u64> = BTreeMap::new();
        for file in &section.files {
            if let Some((_, src)) = sources.iter().find(|(rel, _)| rel == file) {
                consts.extend(parse_consts(src));
            }
        }
        let computed: Option<u64> = section
            .components
            .iter()
            .map(|(_, expr, _)| eval(expr, &consts).ok())
            .sum();
        let declared = section.total_bits.map(|(v, _)| v);
        let ok = match (computed, declared) {
            (Some(c), Some(d)) => c == d,
            _ => false,
        } && !findings.iter().any(|f| f.message.contains(&section.name));
        let fmt = |v: Option<u64>| v.map_or("?".to_string(), |v| v.to_string());
        out.push_str(&format!(
            "{:<24} {:>10} {:>11}  {}\n",
            section.name,
            fmt(computed),
            fmt(declared),
            if ok { "ok" } else { "DRIFT" },
        ));
    }
    let clean = findings.is_empty();
    if !clean {
        out.push('\n');
        for f in &findings {
            out.push_str(&format!("budgets.toml:{}: {}\n", f.line, f.message));
        }
    }
    (out, clean)
}

/// A `storage-budget` finding anchored in the manifest.
fn at(line: u32, snippet: String, message: String) -> Finding {
    Finding {
        rule: "storage-budget",
        file: "budgets.toml".to_string(),
        line,
        snippet,
        message,
        status: Status::Active,
    }
}

/// Parses the manifest subset; malformed lines become findings.
fn parse_manifest(text: &str) -> (Vec<Section>, Vec<Finding>) {
    let mut sections: Vec<Section> = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            sections.push(Section {
                name: name.trim().to_string(),
                line: lineno,
                ..Section::default()
            });
            continue;
        }
        let Some(section) = sections.last_mut() else {
            findings.push(at(
                lineno,
                line.clone(),
                "manifest entry before any [section] header".to_string(),
            ));
            continue;
        };
        let Some((key, value)) = line.split_once('=') else {
            findings.push(at(
                lineno,
                line.clone(),
                "manifest line is not `key = value`".to_string(),
            ));
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let ok = if key == "files" {
            parse_string_list(value)
                .map(|fs| section.files = fs)
                .is_some()
        } else if let Some(comp) = key.strip_prefix("component.") {
            parse_string(value)
                .map(|e| section.components.push((comp.to_string(), e, lineno)))
                .is_some()
        } else if key == "total_bits" {
            parse_int(value)
                .map(|v| section.total_bits = Some((v, lineno)))
                .is_some()
        } else if key == "reference" {
            parse_string(value)
                .map(|r| section.reference = Some((r, lineno)))
                .is_some()
        } else if key == "reference_bits" {
            parse_int(value)
                .map(|v| section.reference_bits = Some((v, lineno)))
                .is_some()
        } else if key == "tier_bits" {
            parse_int(value)
                .map(|v| section.tier_bits = Some((v, lineno)))
                .is_some()
        } else {
            findings.push(at(
                lineno,
                key.to_string(),
                format!("unknown manifest key `{key}`"),
            ));
            continue;
        };
        if !ok {
            findings.push(at(
                lineno,
                line.clone(),
                format!("malformed value for manifest key `{key}`"),
            ));
        }
    }
    (sections, findings)
}

/// Drops a `#`-comment, respecting (only) double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> Option<String> {
    v.strip_prefix('"')?
        .strip_suffix('"')
        .map(|s| s.to_string())
}

fn parse_int(v: &str) -> Option<u64> {
    v.replace('_', "").parse().ok()
}

fn parse_string_list(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Some(out)
}

/// Extracts `const NAME: <ty> = <integer literal>;` declarations from
/// source text. Deliberately literal-only: geometry consts that need
/// computation belong in the manifest's component expressions, where this
/// rule can audit them.
pub fn parse_consts(src: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while let Some(rel) = src[i..].find("const ") {
        let start = i + rel;
        i = start + 6;
        // Must be a word boundary on the left (not `fn_const ` etc.).
        if start > 0 && (bytes[start - 1] as char).is_ascii_alphanumeric() {
            continue;
        }
        let rest = &src[i..];
        let Some(colon) = rest.find(':') else { break };
        let name = rest[..colon].trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        let after_colon = &rest[colon + 1..];
        let Some(eq) = after_colon.find('=') else {
            continue;
        };
        // The type between `:` and `=` must be a plain ident, or this is
        // not a const item (e.g. `const N: usize` in a generic parameter
        // list, where a later unrelated `=` would otherwise match).
        let ty = after_colon[..eq].trim();
        if ty.is_empty() || !ty.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        let Some(semi) = after_colon[eq + 1..].find(';') else {
            continue;
        };
        let value_text = after_colon[eq + 1..eq + 1 + semi].trim();
        if let Some(v) = parse_int(value_text) {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Evaluates `+ - * /` integer expressions with parens over the const
/// environment. Recursive descent; division is exact (a remainder is an
/// error — bit budgets do not round).
fn eval(expr: &str, env: &BTreeMap<String, u64>) -> Result<u64, String> {
    let toks = eval_lex(expr)?;
    let mut pos = 0usize;
    let v = eval_sum(&toks, &mut pos, env)?;
    if pos != toks.len() {
        return Err(format!("unexpected trailing input at token {pos}"));
    }
    Ok(v)
}

#[derive(Debug, PartialEq)]
enum ETok {
    Num(u64),
    Name(String),
    Op(char),
}

fn eval_lex(expr: &str) -> Result<Vec<ETok>, String> {
    let chars: Vec<char> = expr.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let mut j = i;
            let mut text = String::new();
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                if chars[j] != '_' {
                    text.push(chars[j]);
                }
                j += 1;
            }
            out.push(ETok::Num(text.parse().map_err(|e| format!("{e}"))?));
            i = j;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            let mut text = String::new();
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                text.push(chars[j]);
                j += 1;
            }
            out.push(ETok::Name(text));
            i = j;
        } else if matches!(c, '+' | '-' | '*' | '/' | '(' | ')') {
            out.push(ETok::Op(c));
            i += 1;
        } else {
            return Err(format!("unexpected character `{c}`"));
        }
    }
    Ok(out)
}

fn eval_sum(toks: &[ETok], pos: &mut usize, env: &BTreeMap<String, u64>) -> Result<u64, String> {
    let mut acc = eval_product(toks, pos, env)?;
    while let Some(ETok::Op(op @ ('+' | '-'))) = toks.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = eval_product(toks, pos, env)?;
        acc = if op == '+' {
            acc.checked_add(rhs).ok_or("overflow")?
        } else {
            acc.checked_sub(rhs).ok_or("negative intermediate")?
        };
    }
    Ok(acc)
}

fn eval_product(
    toks: &[ETok],
    pos: &mut usize,
    env: &BTreeMap<String, u64>,
) -> Result<u64, String> {
    let mut acc = eval_atom(toks, pos, env)?;
    while let Some(ETok::Op(op @ ('*' | '/'))) = toks.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = eval_atom(toks, pos, env)?;
        if op == '*' {
            acc = acc.checked_mul(rhs).ok_or("overflow")?;
        } else {
            if rhs == 0 {
                return Err("division by zero".to_string());
            }
            if acc % rhs != 0 {
                return Err(format!(
                    "{acc} / {rhs} is not exact; bit budgets do not round"
                ));
            }
            acc /= rhs;
        }
    }
    Ok(acc)
}

fn eval_atom(toks: &[ETok], pos: &mut usize, env: &BTreeMap<String, u64>) -> Result<u64, String> {
    match toks.get(*pos) {
        Some(ETok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(ETok::Name(n)) => {
            *pos += 1;
            env.get(n).copied().ok_or_else(|| {
                format!("unknown const `{n}` (not a plain integer literal in the listed files?)")
            })
        }
        Some(ETok::Op('(')) => {
            *pos += 1;
            let v = eval_sum(toks, pos, env)?;
            match toks.get(*pos) {
                Some(ETok::Op(')')) => {
                    *pos += 1;
                    Ok(v)
                }
                _ => Err("missing closing paren".to_string()),
            }
        }
        other => Err(format!("expected a value, found {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consts_are_parsed_from_source() {
        let src = "pub const A: usize = 8192;\nconst B: u32 = 1_024;\nconst SKIP: usize = A * 2;\n";
        let cs = parse_consts(src);
        assert_eq!(cs, vec![("A".to_string(), 8192), ("B".to_string(), 1024)]);
    }

    #[test]
    fn expressions_evaluate_over_consts() {
        let mut env = BTreeMap::new();
        env.insert("E".to_string(), 64u64);
        env.insert("W".to_string(), 47u64);
        assert_eq!(eval("E * W", &env).unwrap(), 3008);
        assert_eq!(eval("(E + E) * W / 2", &env).unwrap(), 3008);
        assert!(eval("E / 5", &env).is_err());
        assert!(eval("MISSING", &env).is_err());
    }

    #[test]
    fn matching_manifest_is_clean() {
        let manifest = "\
[loop_pred.default_scl]
files = [\"p/src/loop.rs\"]
component.entries = \"ENTRIES * ENTRY_BITS\"
total_bits = 3008
reference = \"cbp64kb.loop\"
reference_bits = 1248
";
        let src = "pub const ENTRIES: usize = 64;\npub const ENTRY_BITS: usize = 47;\n";
        let findings = check(manifest, &[("p/src/loop.rs".to_string(), src.to_string())]);
        // Only the missing-required-section findings fire.
        assert!(
            findings.iter().all(|f| f.message.contains("declares no")),
            "{findings:?}"
        );
    }

    #[test]
    fn drifted_total_is_caught() {
        let manifest = "\
[loop_pred.default_scl]
files = [\"p/src/loop.rs\"]
component.entries = \"ENTRIES * ENTRY_BITS\"
total_bits = 3009
";
        let src = "pub const ENTRIES: usize = 64;\npub const ENTRY_BITS: usize = 47;\n";
        let findings = check(manifest, &[("p/src/loop.rs".to_string(), src.to_string())]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("computed storage is 3008")),
            "{findings:?}"
        );
    }

    #[test]
    fn reference_drift_is_caught() {
        let manifest = "\
[loop_pred.default_scl]
files = []
total_bits = 3008
reference = \"cbp64kb.loop\"
reference_bits = 1249
";
        let findings = check(manifest, &[]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("reference value is 1248")),
            "{findings:?}"
        );
    }

    #[test]
    fn tier_overflow_is_caught() {
        let manifest = "\
[tage_scl.paper]
files = []
total_bits = 600000
tier_bits = 524288
";
        let findings = check(manifest, &[]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("exceeds its storage tier cap")),
            "{findings:?}"
        );
    }
}
