//! The rule registry and the per-file rule-execution context.
//!
//! Each rule is a pure function from a lexed, classified file to a list of
//! findings; no rule does I/O. Scope decisions (which crates a rule covers)
//! live in [`crate::Config`] so fixture tests can build small fake
//! workspaces that exercise every rule without touching the real tree.

pub mod budget;
pub mod determinism;
pub mod panic_freedom;
pub mod secret;
pub mod serve;
pub mod taint;
pub mod unsafe_audit;

use crate::lexer::{Lexed, Tok, Token};
use crate::report::{Finding, Status, UnsafeSite};
use crate::scope::{FileClass, TestRanges};
use crate::Config;

/// Identifiers of every rule, sorted; the single source of truth that the
/// waiver-hygiene check validates rule names against.
pub const ALL_RULES: &[&str] = &[
    "determinism-collections",
    "determinism-env",
    "determinism-thread-id",
    "determinism-time",
    "panic-freedom",
    "secret-debug",
    "secret-taint-branch",
    "secret-taint-format",
    "secret-taint-index",
    "secret-taint-store",
    "serve-hot-lock",
    "serve-lock-order",
    "storage-budget",
    "unsafe-audit",
    "waiver-hygiene",
];

/// Returns true if `rule` is a known rule id.
pub fn is_known_rule(rule: &str) -> bool {
    ALL_RULES.contains(&rule)
}

/// Everything a rule needs to scan one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Crate/kind classification.
    pub class: &'a FileClass,
    /// Token stream and comments.
    pub lexed: &'a Lexed,
    /// `#[cfg(test)]` line ranges.
    pub tests: &'a TestRanges,
    /// Scope configuration.
    pub config: &'a Config,
}

impl FileCtx<'_> {
    /// Is the token at this line production (non-test) code?
    pub fn is_production(&self, line: u32) -> bool {
        !self.tests.contains(line)
    }

    /// Constructs an active finding at a token.
    pub fn finding(
        &self,
        rule: &'static str,
        line: u32,
        snippet: impl Into<String>,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule,
            file: self.rel.to_string(),
            line,
            snippet: snippet.into(),
            message: message.into(),
            status: Status::Active,
        }
    }
}

/// Runs every per-file rule, appending findings and unsafe sites, and
/// collecting lock sequences for the cross-file `serve-lock-order`
/// finalize.
///
/// Workspace-level passes — `storage-budget` (needs the manifest plus
/// every listed source) and [`serve::finalize_lock_order`] — run from
/// [`crate::run_lint`], not here.
pub fn run_all(
    ctx: &FileCtx<'_>,
    findings: &mut Vec<Finding>,
    inventory: &mut Vec<UnsafeSite>,
    sequences: &mut Vec<serve::LockSeq>,
) {
    determinism::run(ctx, findings);
    secret::run(ctx, findings);
    taint::run(ctx, findings);
    serve::run_collect(ctx, findings, sequences);
    panic_freedom::run(ctx, findings);
    unsafe_audit::run(ctx, findings, inventory);
}

/// True when `toks[i..]` starts with the given identifier.
pub(crate) fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// True when `toks[i..]` starts with the given punctuation char.
pub(crate) fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// True when `toks[i]` and `toks[i+1]` form `::`.
pub(crate) fn path_sep_at(toks: &[Token], i: usize) -> bool {
    punct_at(toks, i, ':') && punct_at(toks, i + 1, ':')
}
