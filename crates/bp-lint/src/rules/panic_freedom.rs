//! Panic-freedom rule: library code returns errors, it does not die.
//!
//! PR 1 migrated the workspace's constructors to typed errors
//! (`ConfigError` / `SimError`); this rule keeps that migration complete.
//! In library code outside `#[cfg(test)]`, the following are findings:
//!
//! * `.unwrap()` and `.expect(...)` — convert to `?` on the typed errors,
//!   or restructure so the invariant is expressed in the types.
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!` — a service core
//!   must reject bad state, not abort on it.
//!
//! Binary entry points (`src/main.rs`, `src/bin/**`) are exempt: a CLI's
//! top level is exactly where errors become process exits. Test modules
//! are exempt: a failed test *should* panic. `debug_assert!` is exempt by
//! design — debug-build invariant checks are how contract violations stay
//! loud under `cargo test` while release library code stays total. The
//! supervised sweep boundary in `bench` (where a worker panic is caught by
//! `try_par_map` and recorded as a point failure) keeps its deliberate
//! panics under reasoned waivers.

use super::{ident_at, punct_at, FileCtx};
use crate::report::Finding;
use crate::scope::FileKind;

/// Runs the panic-freedom rule over one file.
pub fn run(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.class.kind == FileKind::Bin {
        return;
    }
    if ctx
        .config
        .panic_exempt_crates
        .contains(&ctx.class.crate_name)
    {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    for i in 0..n {
        let line = toks[i].line;
        if !ctx.is_production(line) {
            continue;
        }
        if punct_at(toks, i, '.') {
            if let Some(m @ ("unwrap" | "expect")) = ident_at(toks, i + 1) {
                if punct_at(toks, i + 2, '(') {
                    let snippet = format!(".{m}()");
                    findings.push(ctx.finding(
                        "panic-freedom",
                        line,
                        snippet,
                        format!("`.{m}()` in library code: return a typed error instead"),
                    ));
                }
            }
        } else if let Some(m @ ("panic" | "unreachable" | "todo" | "unimplemented")) =
            ident_at(toks, i)
        {
            // Exclude `core::panic::...` paths and attribute idents: a
            // macro invocation is exactly `name !`.
            if punct_at(toks, i + 1, '!') && !punct_at(toks, i.wrapping_sub(1), ':') {
                findings.push(ctx.finding(
                    "panic-freedom",
                    line,
                    format!("{m}!"),
                    format!("`{m}!` in library code: return a typed error instead"),
                ));
            }
        }
    }
}
