//! Unsafe audit: every `unsafe` carries a `// SAFETY:` justification.
//!
//! The workspace is currently `unsafe`-free, and this rule keeps any
//! future use honest: an `unsafe` keyword (block, fn, impl, or trait)
//! must have a line comment starting with `SAFETY:` on the same line or
//! within the three lines above it. Every occurrence — compliant or not —
//! is also recorded in the report's `unsafe_inventory`, so the full audit
//! surface is one `bp_lint --format json` away even when the rule passes.

use super::FileCtx;
use crate::lexer::Tok;
use crate::report::{Finding, UnsafeSite};

/// How far above the `unsafe` keyword a `// SAFETY:` comment may sit.
const SAFETY_LOOKBACK_LINES: u32 = 3;

/// Runs the unsafe audit over one file, recording inventory as it goes.
pub fn run(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, inventory: &mut Vec<UnsafeSite>) {
    for t in &ctx.lexed.tokens {
        let Tok::Ident(s) = &t.tok else { continue };
        if s != "unsafe" {
            continue;
        }
        let has_safety = ctx.lexed.comments.iter().any(|c| {
            c.line <= t.line
                && c.line + SAFETY_LOOKBACK_LINES >= t.line
                && c.text.trim_start().starts_with("SAFETY:")
        });
        inventory.push(UnsafeSite {
            file: ctx.rel.to_string(),
            line: t.line,
            has_safety,
        });
        if !has_safety && ctx.is_production(t.line) {
            findings.push(ctx.finding(
                "unsafe-audit",
                t.line,
                "unsafe",
                "`unsafe` without an adjacent `// SAFETY:` comment",
            ));
        }
    }
}
