//! Secret-hygiene: the `secret-debug` rule plus the shared key-material
//! vocabulary used by the dataflow taint pass.
//!
//! The threat model (PPP eviction sets, reuse attacks, §VI of the paper)
//! assumes the attacker never learns the randomization keys: the QARMA-64
//! code book, the per-domain content keys, the index seeds. This module
//! owns the *vocabulary* of that assumption — which type names, field
//! names, and identifiers denote key material ([`SECRET_TYPES`],
//! [`SECRET_FIELDS`], [`SECRET_IDENTS`]) — and one rule of its own:
//!
//! * `secret-debug` — a key-material type deriving or implementing
//!   `Debug`/`Display` means one `{:?}` anywhere prints the code book.
//!   Detection is by type name *and* by shape: any struct with a field
//!   named like key material (`keys`, `content_key`, `round_keys`, ...)
//!   that derives `Debug` is flagged.
//!
//! The lexical `secret-format` / `secret-branch` rules that used to live
//! here were replaced in v2 by the strictly stronger dataflow rules in
//! [`super::taint`] (`secret-taint-branch`, `secret-taint-format`,
//! `secret-taint-index`, `secret-taint-store`), which follow key material
//! through `let` bindings and method returns instead of matching names at
//! the sink only. The `secret-debug` rule remains token-level and is the
//! load-bearing backstop — with no `Debug` impl on the key types, the
//! compiler itself rejects most leak paths.

use super::{ident_at, punct_at, FileCtx};
use crate::lexer::Tok;
use crate::report::Finding;

/// Type names that hold key material.
pub const SECRET_TYPES: &[&str] = &[
    "DomainKeys",
    "IndexSeed",
    "KeyManager",
    "KeysTable",
    "Llbc",
    "Prince",
    "Qarma64",
    "RefreshState",
    "XorCipher",
];

/// Field names that mark a struct as key-material-bearing.
pub(crate) const SECRET_FIELDS: &[&str] = &[
    "content_key",
    "k0",
    "k1",
    "key_halves",
    "keys",
    "old_keys",
    "refresh",
    "round_keys",
    "w0",
    "w1",
];

/// Variable/field identifiers treated as key material wherever they
/// appear; the taint pass seeds its environment from this list.
pub(crate) const SECRET_IDENTS: &[&str] = &[
    "code_book",
    "content_key",
    "index_seed",
    "key_manager",
    "keys",
    "keys_table",
    "old_keys",
    "round_keys",
];

/// Format-like macros whose arguments reach logs, panics, or strings.
pub(crate) const FORMAT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "eprint",
    "eprintln",
    "error",
    "format",
    "format_args",
    "info",
    "panic",
    "print",
    "println",
    "todo",
    "trace",
    "unimplemented",
    "unreachable",
    "warn",
    "write",
    "writeln",
];

/// Runs the `secret-debug` rule over one file. The dataflow secret rules
/// run from [`super::taint`].
pub fn run(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx
        .config
        .secret_scope_crates
        .contains(&ctx.class.crate_name)
    {
        return;
    }
    debug_impls(ctx, findings);
}

/// `secret-debug`: derives and manual impls of Debug/Display on key types.
fn debug_impls(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    // First pass: struct names defined *in this file* whose bodies carry a
    // key-material field, so `impl Debug for LocalKeyHolder` is caught by
    // shape, not only by the global name list.
    let mut local_secret_types: Vec<String> = Vec::new();
    let mut s = 0usize;
    while s < n {
        if matches!(ident_at(toks, s), Some("struct") | Some("union")) {
            if let Some((name, _, Some(body))) = next_type_item(toks, s) {
                if body_has_secret_field(toks, body) {
                    local_secret_types.push(name);
                }
            }
        }
        s += 1;
    }
    let is_secret_type =
        |name: &str| SECRET_TYPES.contains(&name) || local_secret_types.iter().any(|t| t == name);
    let mut i = 0usize;
    while i < n {
        // `#[derive(..., Debug, ...)]` followed by a struct/enum item.
        if punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("derive")
        {
            let mut j = i + 3;
            let mut has_debug = false;
            let mut depth = 0i32;
            while j < n {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') => depth -= 1,
                    Tok::Punct(']') => {
                        if depth <= 0 {
                            j += 1;
                            break;
                        }
                        depth -= 1;
                    }
                    Tok::Ident(s) if s == "Debug" => has_debug = true,
                    _ => {}
                }
                j += 1;
            }
            if has_debug {
                if let Some((name, name_line, body_start)) = next_type_item(toks, j) {
                    let secret_name = SECRET_TYPES.contains(&name.as_str());
                    let secret_shape = body_start.is_some_and(|b| body_has_secret_field(toks, b));
                    if secret_name || secret_shape {
                        findings.push(ctx.finding(
                            "secret-debug",
                            name_line,
                            format!("derive(Debug) on {name}"),
                            format!(
                                "key-material type `{name}` derives Debug; one `{{:?}}` prints the code book"
                            ),
                        ));
                    }
                }
            }
            i = j;
            continue;
        }
        // `impl [path::]Debug|Display for Type`.
        if ident_at(toks, i) == Some("impl") {
            let mut j = i + 1;
            let mut trait_name: Option<&str> = None;
            let mut type_name: Option<(String, u32)> = None;
            let mut seen_for = false;
            while j < n && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
                match &toks[j].tok {
                    Tok::Ident(s) if s == "for" => seen_for = true,
                    Tok::Ident(s) if !seen_for && (s == "Debug" || s == "Display") => {
                        trait_name = Some(if s == "Debug" { "Debug" } else { "Display" });
                    }
                    Tok::Ident(s) if seen_for && type_name.is_none() && s != "crate" => {
                        type_name = Some((s.clone(), toks[j].line));
                    }
                    // A path like `keys::KeysTable` keeps updating to the
                    // last segment before `<` or `{`.
                    Tok::Ident(s) if seen_for && s != "crate" => {
                        if let Some(t) = &mut type_name {
                            if punct_at(toks, j.wrapping_sub(1), ':') {
                                *t = (s.clone(), toks[j].line);
                            }
                        }
                    }
                    Tok::Punct('<') => break,
                    _ => {}
                }
                j += 1;
            }
            if let (Some(tr), Some((ty, line))) = (trait_name, &type_name) {
                if is_secret_type(ty.as_str()) {
                    findings.push(ctx.finding(
                        "secret-debug",
                        *line,
                        format!("impl {tr} for {ty}"),
                        format!("key-material type `{ty}` implements {tr}; formatting it leaks key material"),
                    ));
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// After a derive attribute, finds the next `struct`/`enum` item: returns
/// (name, line, index of the opening `{` of its body if any).
fn next_type_item(
    toks: &[crate::lexer::Token],
    from: usize,
) -> Option<(String, u32, Option<usize>)> {
    let n = toks.len();
    let mut j = from;
    // Skip further attributes and visibility/qualifier idents.
    while j < n {
        if punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            let mut depth = 0i32;
            j += 1;
            while j < n {
                match &toks[j].tok {
                    Tok::Punct('[') | Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => depth -= 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            continue;
        }
        match ident_at(toks, j) {
            Some("struct") | Some("enum") | Some("union") => {
                let name = ident_at(toks, j + 1)?.to_string();
                let line = toks.get(j + 1)?.line;
                // Find the body brace (skipping generics).
                let mut k = j + 2;
                let mut angle = 0i32;
                while k < n {
                    match &toks[k].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct('{') if angle <= 0 => return Some((name, line, Some(k))),
                        Tok::Punct(';') if angle <= 0 => return Some((name, line, None)),
                        Tok::Punct('(') if angle <= 0 => return Some((name, line, None)),
                        _ => {}
                    }
                    k += 1;
                }
                return Some((name, line, None));
            }
            Some("pub") | Some("crate") | Some("in") | Some("super") | Some("self") => j += 1,
            Some(_) | None => {
                if punct_at(toks, j, '(') || punct_at(toks, j, ')') {
                    j += 1;
                } else {
                    return None;
                }
            }
        }
    }
    None
}

/// Does a struct body (starting at its `{`) declare a secret-named field?
fn body_has_secret_field(toks: &[crate::lexer::Token], open: usize) -> bool {
    let n = toks.len();
    let mut depth = 0i32;
    let mut j = open;
    while j < n {
        match &toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(s)
                if depth == 1
                    && SECRET_FIELDS.contains(&s.as_str())
                    && punct_at(toks, j + 1, ':') =>
            {
                return true;
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// Is the token sequence at `i` a shape read (`.len()`, `.is_empty()`,
/// `.capacity()`) rather than a value read? Shape is geometry, not secret.
pub(crate) fn is_shape_read(toks: &[crate::lexer::Token], i: usize) -> bool {
    punct_at(toks, i, '.')
        && matches!(
            ident_at(toks, i + 1),
            Some("len") | Some("is_empty") | Some("capacity")
        )
        && punct_at(toks, i + 2, '(')
}

/// Extracts `{name}` / `{name:spec}` inline captures from a format string.
pub(crate) fn inline_captures(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '{' {
            if i + 1 < chars.len() && chars[i + 1] == '{' {
                i += 2; // escaped brace
                continue;
            }
            let mut j = i + 1;
            let mut name = String::new();
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            if !name.is_empty()
                && j < chars.len()
                && (chars[j] == '}' || chars[j] == ':')
                && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                out.push(name);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}
