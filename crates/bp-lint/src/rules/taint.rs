//! Intra-procedural secret-taint tracking.
//!
//! The lexical `secret-*` rules from v1 matched key-material *names* at
//! the sink: `if keys & 1 == 1` was caught, `let material = keys; if
//! material & 1 == 1` was not. This pass closes that hole. Per function
//! (boundaries from [`crate::ir`]) it computes a taint environment:
//!
//! * parameters whose type mentions a key-material type
//!   ([`super::secret::SECRET_TYPES`]) are tainted;
//! * the canonical key-material identifiers
//!   ([`super::secret::SECRET_IDENTS`]) are always tainted;
//! * a `let` binding whose initializer span is tainted — contains a
//!   tainted name, a key-material type, or a call to a key-returning
//!   method on the [`TAINT_METHODS`] allowlist — taints every name it
//!   binds, and plain `name = expr;` reassignments propagate the same
//!   way (taint is monotone: once secret, always secret);
//! * shape reads (`.len()`, `.is_empty()`, `.capacity()`) sanitize —
//!   geometry is public.
//!
//! Findings fire when a tainted value reaches a sink, on production lines
//! only:
//!
//! * `secret-taint-branch` — an `if`/`while`/`match` head (cipher
//!   internals exempt via `cipher_internal_suffixes`: they are
//!   table-driven constant-time and audited as a unit);
//! * `secret-taint-index` — an index expression `base[...]`, outside the
//!   codec allowlist (`index_exempt_suffixes`) where secret-derived
//!   indexing *is* the mechanism under study;
//! * `secret-taint-format` — a format/IO macro argument list, including
//!   inline `{name}` captures of tainted locals;
//! * `secret-taint-store` — assignment into a struct field not named
//!   like key material ([`super::secret::SECRET_FIELDS`]): secrets must
//!   only rest in fields declared for them.
//!
//! The analysis is flow-insensitive within a body (the final environment
//! judges every sink) and has no inter-procedural propagation beyond the
//! method allowlist — deliberate over-approximations that keep it a
//! reviewable few hundred lines while still being strictly stronger than
//! the v1 rules it replaces.

use std::collections::BTreeSet;

use super::secret::{
    inline_captures, is_shape_read, FORMAT_MACROS, SECRET_FIELDS, SECRET_IDENTS, SECRET_TYPES,
};
use super::{ident_at, punct_at, FileCtx};
use crate::ir;
use crate::lexer::{Tok, Token};
use crate::report::Finding;

/// Methods whose return value is key material regardless of receiver.
pub const TAINT_METHODS: &[&str] = &[
    "code_book",
    "content_key",
    "index_key",
    "key_at",
    "key_halves",
    "old_keys",
    "round_keys",
    "schedule",
];

/// Runs the four taint rules over one file.
pub fn run(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx
        .config
        .secret_scope_crates
        .contains(&ctx.class.crate_name)
    {
        return;
    }
    let ends_with = |suffixes: &[String]| suffixes.iter().any(|s| ctx.rel.ends_with(s.as_str()));
    let branch_exempt = ends_with(&ctx.config.cipher_internal_suffixes);
    let index_exempt = ends_with(&ctx.config.index_exempt_suffixes);
    let toks = &ctx.lexed.tokens;
    for f in ir::functions(toks) {
        let tainted = taint_env(toks, &f);
        let nested = ir::nested_fn_spans(toks, f.body);
        let mut sinks = SinkScan {
            ctx,
            toks,
            tainted: &tainted,
            findings,
            branch_exempt,
            index_exempt,
        };
        sinks.scan(f.body, &nested);
    }
}

/// Computes the final taint environment for one function: a forward pass
/// over its `let` bindings and reassignments.
fn taint_env(toks: &[Token], f: &ir::Function) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    for p in &f.params {
        if p.type_idents
            .iter()
            .any(|t| SECRET_TYPES.contains(&t.as_str()))
        {
            tainted.insert(p.name.clone());
        }
    }
    // Interleave lets and assigns in source order so `x = keys; let y = x;`
    // propagates. Both vectors are already source-ordered.
    let mut li = 0usize;
    let mut ai = 0usize;
    loop {
        let take_let = match (f.lets.get(li), f.assigns.get(ai)) {
            (Some(l), Some(a)) => l.init.0 <= a.rhs.0,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_let {
            let l = &f.lets[li];
            let ty_secret = l
                .type_idents
                .iter()
                .any(|t| SECRET_TYPES.contains(&t.as_str()));
            if ty_secret || span_tainted(toks, l.init, &tainted) {
                for name in &l.names {
                    tainted.insert(name.clone());
                }
            }
            li += 1;
        } else {
            let a = &f.assigns[ai];
            if span_tainted(toks, a.rhs, &tainted) {
                tainted.insert(a.name.clone());
            }
            ai += 1;
        }
    }
    tainted
}

/// Is any value in the token span `[from, to)` key material under the
/// current environment?
fn span_tainted(toks: &[Token], span: (usize, usize), tainted: &BTreeSet<String>) -> bool {
    let (from, to) = span;
    let mut j = from;
    while j < to {
        if let Some(s) = ident_at(toks, j) {
            let secret_name =
                SECRET_IDENTS.contains(&s) || SECRET_TYPES.contains(&s) || tainted.contains(s);
            if secret_name && !is_shape_read(toks, j + 1) {
                return true;
            }
            // Key-returning method call: `.key_at(...)` on any receiver.
            if TAINT_METHODS.contains(&s)
                && punct_at(toks, j.wrapping_sub(1), '.')
                && punct_at(toks, j + 1, '(')
            {
                return true;
            }
        }
        j += 1;
    }
    false
}

/// Sink scanning state for one function body.
struct SinkScan<'a, 'f> {
    ctx: &'a FileCtx<'a>,
    toks: &'a [Token],
    tainted: &'a BTreeSet<String>,
    findings: &'f mut Vec<Finding>,
    branch_exempt: bool,
    index_exempt: bool,
}

impl SinkScan<'_, '_> {
    /// Walks a body span, skipping nested-fn regions (they get their own
    /// environment and their own scan).
    fn scan(&mut self, body: (usize, usize), nested: &[(usize, usize)]) {
        let (from, to) = body;
        let mut i = from;
        'outer: while i < to {
            for &(ns, ne) in nested {
                if i >= ns && i < ne {
                    i = ne;
                    continue 'outer;
                }
            }
            i = self.scan_at(i, to);
        }
    }

    /// Examines one position; returns the next position to look at.
    fn scan_at(&mut self, i: usize, to: usize) -> usize {
        let toks = self.toks;
        if let Some(kw) = ident_at(toks, i) {
            // Branch sink: the head of `if`/`while`/`match`.
            if matches!(kw, "if" | "while" | "match")
                && !self.branch_exempt
                && self.ctx.is_production(toks[i].line)
            {
                let head_end = branch_head_end(toks, i + 1, to);
                self.report_span((i + 1, head_end), "secret-taint-branch", |s| {
                    format!(
                        "key material `{s}` reaches a `{kw}` head: \
                             secret-dependent control flow outside cipher internals"
                    )
                });
                return i + 1;
            }
            // Format sink: macro argument lists.
            if FORMAT_MACROS.contains(&kw)
                && punct_at(toks, i + 1, '!')
                && (punct_at(toks, i + 2, '(')
                    || punct_at(toks, i + 2, '[')
                    || punct_at(toks, i + 2, '{'))
                && self.ctx.is_production(toks[i].line)
            {
                let end = span_close(toks, i + 2, to);
                self.report_span((i + 2, end), "secret-taint-format", |s| {
                    format!("key material `{s}` reaches `{kw}!` arguments")
                });
                self.report_captures((i + 2, end), kw);
                return end.max(i + 1);
            }
        }
        // Index sink: `base[...]` where the bracket contents are tainted.
        if punct_at(toks, i, '[')
            && !self.index_exempt
            && matches!(
                toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Ident(_)) | Some(Tok::Punct(')')) | Some(Tok::Punct(']'))
            )
            && self.ctx.is_production(toks[i].line)
        {
            let end = span_close(toks, i, to);
            self.report_span((i + 1, end), "secret-taint-index", |s| {
                format!(
                    "key material `{s}` used as a table index outside the codec allowlist: \
                     the access pattern reveals the key"
                )
            });
            return i + 1;
        }
        // Store sink: `.field = expr;` into a non-secret field.
        if punct_at(toks, i, '.') {
            if let Some(field) = ident_at(toks, i + 1) {
                if punct_at(toks, i + 2, '=')
                    && !punct_at(toks, i + 3, '=')
                    && !SECRET_FIELDS.contains(&field)
                    && self.ctx.is_production(toks[i].line)
                {
                    let rhs = (i + 3, stmt_close(toks, i + 3, to));
                    if let Some(s) = first_tainted(self.toks, rhs, self.tainted) {
                        let field = field.to_string();
                        self.findings.push(self.ctx.finding(
                            "secret-taint-store",
                            toks[i + 1].line,
                            field.clone(),
                            format!(
                                "key material `{s}` stored into non-secret field `{field}`; \
                                 secrets may only rest in declared key-material fields"
                            ),
                        ));
                    }
                    return i + 3;
                }
            }
        }
        i + 1
    }

    /// Reports the first tainted value inside a span under `rule`.
    fn report_span(
        &mut self,
        span: (usize, usize),
        rule: &'static str,
        message: impl Fn(&str) -> String,
    ) {
        if let Some(s) = first_tainted(self.toks, span, self.tainted) {
            let line = self.toks[span.0.min(self.toks.len() - 1)].line;
            // Anchor the finding at the tainted token's own line.
            let at = (span.0..span.1)
                .find(|&j| ident_at(self.toks, j) == Some(s.as_str()))
                .map(|j| self.toks[j].line)
                .unwrap_or(line);
            self.findings
                .push(self.ctx.finding(rule, at, s.clone(), message(&s)));
        }
    }

    /// Reports tainted inline `{name}` captures in format strings.
    fn report_captures(&mut self, span: (usize, usize), macro_name: &str) {
        let (from, to) = span;
        for j in from..to.min(self.toks.len()) {
            if let Tok::Str(content) = &self.toks[j].tok {
                if !self.ctx.is_production(self.toks[j].line) {
                    continue;
                }
                for cap in inline_captures(content) {
                    if SECRET_IDENTS.contains(&cap.as_str()) || self.tainted.contains(&cap) {
                        self.findings.push(self.ctx.finding(
                            "secret-taint-format",
                            self.toks[j].line,
                            format!("{{{cap}}}"),
                            format!(
                                "key material `{cap}` captured inline in a `{macro_name}!` \
                                 format string"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// The first tainted identifier in a span, if any.
fn first_tainted(
    toks: &[Token],
    span: (usize, usize),
    tainted: &BTreeSet<String>,
) -> Option<String> {
    let (from, to) = span;
    let mut j = from;
    while j < to.min(toks.len()) {
        if let Some(s) = ident_at(toks, j) {
            let secret_name =
                SECRET_IDENTS.contains(&s) || SECRET_TYPES.contains(&s) || tainted.contains(s);
            if secret_name && !is_shape_read(toks, j + 1) {
                return Some(s.to_string());
            }
            if TAINT_METHODS.contains(&s)
                && punct_at(toks, j.wrapping_sub(1), '.')
                && punct_at(toks, j + 1, '(')
            {
                return Some(s.to_string());
            }
        }
        j += 1;
    }
    None
}

/// End of a branch head: the body `{` (or a stray `;`) at depth 0.
fn branch_head_end(toks: &[Token], from: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < to {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') | Tok::Punct(';') if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    to
}

/// Index just past the matching closer for the opener at `open`.
fn span_close(toks: &[Token], open: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < to {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth <= 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    to
}

/// Index of the statement-terminating `;` at depth 0 (or `to`).
fn stmt_close(toks: &[Token], from: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < to {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    to
}
