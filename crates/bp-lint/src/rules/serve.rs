//! Serve-discipline rules for the prediction-as-a-service runtime.
//!
//! `bp-serve`'s latency story rests on the shard answer loop staying
//! lock-free: a shard owns its predictor outright and answers from a
//! single thread, so any lock acquisition or blocking call on that path
//! is either a bug or a regression waiting to convoy. Two rules:
//!
//! * `serve-hot-lock` — inside hot-path files
//!   (`Config::serve_hot_path_suffixes`, by default the shard answer
//!   loop), production code may not acquire locks (`.lock()`,
//!   `.try_lock()`, `.read()`/`.write()` on a guard-yielding receiver is
//!   caught by the first two) or block (`thread::sleep`, `park`,
//!   channel `.recv()`, condvar `.wait()`).
//! * `serve-lock-order` — across the whole crate, every function's
//!   sequence of `receiver.lock()` acquisitions is recorded; if two
//!   functions anywhere acquire the same pair of locks in opposite
//!   orders, both orderings are reported. This is the classic AB/BA
//!   deadlock shape, and it is inherently a *workspace* property: the
//!   per-file pass only collects, [`finalize_lock_order`] judges.
//!
//! Lock-order findings are appended after waiver resolution by design —
//! a deadlock shape spans two sites in two files, so a single-line waiver
//! cannot meaningfully accept it; fix the order instead.

use std::collections::BTreeMap;

use super::{ident_at, path_sep_at, punct_at, FileCtx};
use crate::report::{Finding, Status};

/// Method names that acquire a lock.
const LOCK_METHODS: &[&str] = &["lock", "try_lock"];

/// Method names that block the calling thread.
const BLOCKING_METHODS: &[&str] = &["park", "recv", "recv_timeout", "wait", "wait_timeout"];

/// One function's ordered lock acquisitions: receiver names in source
/// order, with the file/line of each acquisition site.
#[derive(Debug, Clone)]
pub struct LockSeq {
    /// Workspace-relative file.
    pub file: String,
    /// Enclosing function name.
    pub function: String,
    /// `(receiver, line)` per acquisition, in source order.
    pub acquisitions: Vec<(String, u32)>,
}

/// Runs `serve-hot-lock` over one file and collects this file's lock
/// sequences for the workspace-level `serve-lock-order` finalize.
pub fn run_collect(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, sequences: &mut Vec<LockSeq>) {
    hot_lock(ctx, findings);
    collect_lock_sequences(ctx, sequences);
}

/// `serve-hot-lock`: lock/blocking calls in hot-path files.
fn hot_lock(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx
        .config
        .serve_hot_path_suffixes
        .iter()
        .any(|s| ctx.rel.ends_with(s.as_str()))
    {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        if !ctx.is_production(toks[i].line) {
            i += 1;
            continue;
        }
        // `thread::sleep(...)` by path.
        if ident_at(toks, i) == Some("thread")
            && path_sep_at(toks, i + 1)
            && ident_at(toks, i + 3) == Some("sleep")
        {
            findings.push(ctx.finding(
                "serve-hot-lock",
                toks[i].line,
                "thread::sleep",
                "blocking call `thread::sleep` on the shard answer hot path",
            ));
            i += 4;
            continue;
        }
        // `.lock()` / `.try_lock()` / blocking method calls.
        if punct_at(toks, i, '.') {
            if let Some(m) = ident_at(toks, i + 1) {
                if punct_at(toks, i + 2, '(')
                    && (LOCK_METHODS.contains(&m) || BLOCKING_METHODS.contains(&m))
                {
                    let kind = if LOCK_METHODS.contains(&m) {
                        "lock acquisition"
                    } else {
                        "blocking call"
                    };
                    findings.push(ctx.finding(
                        "serve-hot-lock",
                        toks[i + 1].line,
                        format!(".{m}()"),
                        format!("{kind} `.{m}()` on the shard answer hot path"),
                    ));
                    i += 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Records each function's ordered `receiver.lock()` acquisitions. Scoped
/// to the serve crates (`Config::serve_crates`); test code excluded.
fn collect_lock_sequences(ctx: &FileCtx<'_>, sequences: &mut Vec<LockSeq>) {
    if !ctx.config.serve_crates.contains(&ctx.class.crate_name) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for f in crate::ir::functions(toks) {
        let mut acquisitions = Vec::new();
        let (from, to) = f.body;
        let mut j = from;
        while j < to {
            // `receiver.lock()` — receiver is the identifier chain just
            // before the dot; the last segment is enough to name the lock.
            if punct_at(toks, j, '.')
                && ident_at(toks, j + 1).is_some_and(|m| LOCK_METHODS.contains(&m))
                && punct_at(toks, j + 2, '(')
                && ctx.is_production(toks[j].line)
            {
                if let Some(recv) = ident_at(toks, j.wrapping_sub(1)) {
                    if recv != "self" {
                        acquisitions.push((recv.to_string(), toks[j + 1].line));
                    }
                }
            }
            j += 1;
        }
        if !acquisitions.is_empty() {
            sequences.push(LockSeq {
                file: ctx.rel.to_string(),
                function: f.name.clone(),
                acquisitions,
            });
        }
    }
}

/// `serve-lock-order`: judges all collected sequences at once. For every
/// ordered pair (a, b) acquired in that order by some function, a
/// function elsewhere acquiring (b, a) is an inversion; both sites are
/// reported, deterministically.
pub fn finalize_lock_order(sequences: &[LockSeq]) -> Vec<Finding> {
    // pair (first, second) -> earliest (file, function, line) exhibiting it.
    let mut orders: BTreeMap<(String, String), (String, String, u32)> = BTreeMap::new();
    for seq in sequences {
        for (i, (a, _)) in seq.acquisitions.iter().enumerate() {
            for (b, line_b) in seq.acquisitions.iter().skip(i + 1) {
                if a == b {
                    continue;
                }
                orders
                    .entry((a.clone(), b.clone()))
                    .or_insert_with(|| (seq.file.clone(), seq.function.clone(), *line_b));
            }
        }
    }
    let mut findings = Vec::new();
    for ((a, b), (file, function, line)) in &orders {
        // Only report each conflicting pair once, from the
        // lexicographically smaller ordering, naming both sites.
        if a < b {
            if let Some((file2, function2, line2)) = orders.get(&(b.clone(), a.clone())) {
                findings.push(Finding {
                    rule: "serve-lock-order",
                    file: file.clone(),
                    line: *line,
                    snippet: format!("{a} -> {b}"),
                    message: format!(
                        "lock-order inversion: `{function}` ({file}:{line}) acquires \
                         `{a}` then `{b}`, but `{function2}` ({file2}:{line2}) acquires \
                         `{b}` then `{a}` — AB/BA deadlock shape"
                    ),
                    status: Status::Active,
                });
            }
        }
    }
    findings
}
