//! Determinism rules: keep nondeterminism out of result paths.
//!
//! The reproduction's headline guarantee is that every CSV and telemetry
//! JSONL is byte-identical at any thread count and across reruns. Four
//! ingredients can silently break that, and each gets a rule:
//!
//! * `determinism-time` — `std::time::Instant` / `SystemTime`: wall-clock
//!   values differ per run; anything derived from them is nondeterministic.
//! * `determinism-collections` — `HashMap` / `HashSet` (and a bare
//!   `RandomState`): iteration order is seeded per-process, so any result
//!   assembled by iterating one is run-dependent.
//! * `determinism-thread-id` — `thread::current()` (the `.id()` / `.name()`
//!   sources): scheduler-dependent identity must never key or order data.
//! * `determinism-env` — `env::var` and friends: ambient process state
//!   read at compute time makes results depend on the invoking shell.
//!   (Compile-time `env!` is fine: it is fixed per binary.)
//!
//! The rules fire only in the simulation/result-producing crates listed in
//! [`crate::Config::determinism_crates`], only in library code (binaries
//! are drivers), and only outside `#[cfg(test)]`. Intentional uses — the
//! bench timing layer, operator knobs like `HYBP_THREADS` — carry inline
//! waivers with reasons.

use super::{ident_at, path_sep_at, punct_at, FileCtx};
use crate::lexer::Tok;
use crate::report::Finding;
use crate::scope::FileKind;

/// Runs the four determinism rules over one file.
pub fn run(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx
        .config
        .determinism_crates
        .contains(&ctx.class.crate_name)
    {
        return;
    }
    if ctx.class.kind == FileKind::Bin {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !ctx.is_production(t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        match name.as_str() {
            "Instant" | "SystemTime" => findings.push(ctx.finding(
                "determinism-time",
                t.line,
                name.clone(),
                format!("wall-clock type `{name}` in a result-producing crate"),
            )),
            "HashMap" | "HashSet" | "RandomState" => findings.push(ctx.finding(
                "determinism-collections",
                t.line,
                name.clone(),
                format!("iteration-order-randomized `{name}` in a result-producing crate (use BTreeMap/BTreeSet or a sorted Vec)"),
            )),
            "thread" if path_sep_at(toks, i + 1) && ident_at(toks, i + 3) == Some("current") => {
                findings.push(ctx.finding(
                    "determinism-thread-id",
                    t.line,
                    "thread::current",
                    "scheduler-dependent thread identity in a result-producing crate",
                ));
            }
            "env" if path_sep_at(toks, i + 1) => {
                if let Some(f) = ident_at(toks, i + 3) {
                    if matches!(f, "var" | "var_os" | "vars" | "vars_os" | "remove_var" | "set_var")
                        && punct_at(toks, i + 4, '(')
                    {
                        findings.push(ctx.finding(
                            "determinism-env",
                            t.line,
                            format!("env::{f}"),
                            format!("runtime environment read `env::{f}` in a result-producing crate"),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}
