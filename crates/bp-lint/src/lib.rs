//! `bp-lint` — in-repo static analysis enforcing the reproduction's
//! non-negotiable invariants.
//!
//! The workspace's two headline guarantees rest on properties no compiler
//! checks: **determinism** (byte-identical CSVs and telemetry JSONL at any
//! thread count — so no wall clocks, no `RandomState` iteration order, no
//! ambient env reads in result paths) and **secret-hygiene** (the QARMA
//! code book and per-domain keys never reach a log, a `Debug` impl, or a
//! secret-dependent branch). Two more keep the codebase honest at scale:
//! **panic-freedom** in library code (completing the typed-error
//! migration) and an **unsafe audit** (every `unsafe` justifies itself
//! with `// SAFETY:`). This crate scans the workspace at the token level
//! and enforces all four, with:
//!
//! * inline waivers — `// bp-lint: allow(<rule>) reason="..."` — that are
//!   themselves linted (unknown rule, empty reason, or suppressing
//!   nothing ⇒ `waiver-hygiene` finding);
//! * a checked-in, shrink-only baseline for grandfathered debt;
//! * deterministic JSON / text reports (byte-identical across runs).
//!
//! Run it with `cargo run -p bp-lint`; see `DESIGN.md` §7 for the rule
//! catalog and policy. The crate is std-only, like the rest of the
//! workspace, and holds itself to its own rules (`tests/self_check.rs`).

pub mod baseline;
pub mod ir;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod waiver;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use report::{Report, Status};
use rules::FileCtx;

/// Fatal lint-tool errors (I/O, malformed baseline, bad usage). Rule
/// violations are *findings*, not errors.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem access failed.
    Io(String),
    /// The baseline file exists but cannot be parsed.
    Baseline(String),
    /// Bad command-line usage.
    Usage(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(m) => write!(f, "io error: {m}"),
            LintError::Baseline(m) => write!(f, "baseline error: {m}"),
            LintError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Scope configuration: which crates each rule family covers.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// Crates whose library code must be deterministic (simulation and
    /// result-producing paths).
    pub determinism_crates: BTreeSet<String>,
    /// Crates where the secret-hygiene rules apply (key material lives in
    /// or flows through them).
    pub secret_scope_crates: BTreeSet<String>,
    /// Crates exempt from panic-freedom (none by default; the field
    /// exists so fixture workspaces can carve out counter-examples).
    pub panic_exempt_crates: BTreeSet<String>,
    /// Path suffixes of constant-time cipher internals, exempt from the
    /// `secret-taint-branch` rule (audited as a unit instead).
    pub cipher_internal_suffixes: Vec<String>,
    /// Path suffixes of the codec allowlist, exempt from
    /// `secret-taint-index`: files where secret-derived indexing *is* the
    /// randomization mechanism under study (cipher S-box lookups, the
    /// keyed index computation itself).
    pub index_exempt_suffixes: Vec<String>,
    /// Path suffixes of shard answer hot-path files, where
    /// `serve-hot-lock` forbids lock acquisition and blocking calls.
    pub serve_hot_path_suffixes: Vec<String>,
    /// Crates whose lock acquisition order is checked crate-wide by
    /// `serve-lock-order`.
    pub serve_crates: BTreeSet<String>,
}

impl Config {
    /// The scope this repository actually enforces.
    pub fn workspace_default(root: impl Into<PathBuf>) -> Self {
        let set =
            |names: &[&str]| -> BTreeSet<String> { names.iter().map(|s| s.to_string()).collect() };
        Config {
            root: root.into(),
            determinism_crates: set(&[
                "bench",
                "bp-attacks",
                "bp-common",
                "bp-crypto",
                "bp-faults",
                "bp-pipeline",
                "bp-predictors",
                "bp-serve",
                "bp-trace",
                "bp-workloads",
                "hybp",
            ]),
            secret_scope_crates: set(&[
                "bp-attacks",
                "bp-crypto",
                "bp-pipeline",
                "bp-predictors",
                "hybp",
            ]),
            panic_exempt_crates: BTreeSet::new(),
            cipher_internal_suffixes: vec![
                "bp-crypto/src/qarma.rs".to_string(),
                "bp-crypto/src/prince.rs".to_string(),
                "bp-crypto/src/llbc.rs".to_string(),
            ],
            index_exempt_suffixes: vec![
                "bp-crypto/src/qarma.rs".to_string(),
                "bp-crypto/src/prince.rs".to_string(),
                "bp-crypto/src/llbc.rs".to_string(),
                "bp-crypto/src/keys.rs".to_string(),
            ],
            serve_hot_path_suffixes: vec!["bp-serve/src/shard.rs".to_string()],
            serve_crates: set(&["bp-serve"]),
        }
    }
}

/// Runs the full lint over the workspace at `config.root`.
///
/// `baseline` grandfathered findings are marked [`Status::Baselined`];
/// stale entries are recorded for the shrink-only check. The returned
/// report is normalized (deterministically sorted) and ready to emit.
pub fn run_lint(config: &Config, baseline: &Baseline) -> Result<Report, LintError> {
    let mut report = Report::default();
    let mut sequences: Vec<rules::serve::LockSeq> = Vec::new();
    let files = workspace_files(&config.root)?;
    for rel in &files {
        let abs = config.root.join(rel);
        let Some(class) = scope::classify(rel) else {
            continue;
        };
        let src = fs::read_to_string(&abs)
            .map_err(|e| LintError::Io(format!("{}: {e}", abs.display())))?;
        report.files_scanned += 1;
        scan_file_collect(config, rel, &class, &src, &mut report, &mut sequences);
    }
    // Workspace passes. These findings land after waiver resolution by
    // design: a lock-order inversion spans two sites and a budget drift
    // spans manifest + source, so neither can be accepted by one inline
    // comment — fix the code or the manifest.
    report
        .findings
        .append(&mut rules::serve::finalize_lock_order(&sequences));
    storage_budget_pass(config, &mut report)?;
    report.normalize();
    baseline.apply(&mut report);
    // Baselining happens after waiver resolution; re-sort in case stale
    // entries were appended.
    report.normalize();
    Ok(report)
}

/// Runs the `storage-budget` rule: reads `budgets.toml` at the workspace
/// root (its absence is itself a finding — the manifest is part of the
/// invariant) plus every source file each section lists, and appends
/// findings for computed ≠ declared, reference drift, or tier overflow.
fn storage_budget_pass(config: &Config, report: &mut Report) -> Result<(), LintError> {
    let manifest_path = config.root.join("budgets.toml");
    let manifest = match fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            report.findings.push(Finding {
                rule: "storage-budget",
                file: "budgets.toml".to_string(),
                line: 1,
                snippet: "budgets.toml".to_string(),
                message:
                    "storage-budget manifest `budgets.toml` is missing from the workspace root"
                        .to_string(),
                status: Status::Active,
            });
            return Ok(());
        }
        Err(e) => return Err(LintError::Io(format!("{}: {e}", manifest_path.display()))),
    };
    let mut sources = Vec::new();
    for rel in rules::budget::listed_files(&manifest) {
        let abs = config.root.join(&rel);
        let src = fs::read_to_string(&abs)
            .map_err(|e| LintError::Io(format!("{}: {e}", abs.display())))?;
        sources.push((rel, src));
    }
    report
        .findings
        .append(&mut rules::budget::check(&manifest, &sources));
    Ok(())
}

/// Lints one file's source text (separated from I/O for fixture tests).
///
/// Cross-file state is finalized *locally*: lock sequences from this file
/// alone feed `serve-lock-order`. Production runs go through
/// [`run_lint`], which accumulates sequences across the workspace
/// instead.
pub fn scan_file(
    config: &Config,
    rel: &str,
    class: &scope::FileClass,
    src: &str,
    report: &mut Report,
) {
    let mut sequences = Vec::new();
    scan_file_collect(config, rel, class, src, report, &mut sequences);
    report
        .findings
        .append(&mut rules::serve::finalize_lock_order(&sequences));
}

/// [`scan_file`] variant that collects lock sequences into a caller-owned
/// accumulator instead of finalizing them per file.
pub fn scan_file_collect(
    config: &Config,
    rel: &str,
    class: &scope::FileClass,
    src: &str,
    report: &mut Report,
    sequences: &mut Vec<rules::serve::LockSeq>,
) {
    let lexed = lexer::lex(src);
    let tests = scope::test_ranges(&lexed);
    let ctx = FileCtx {
        rel,
        class,
        lexed: &lexed,
        tests: &tests,
        config,
    };
    let mut findings = Vec::new();
    rules::run_all(&ctx, &mut findings, &mut report.unsafe_inventory, sequences);

    // Waiver resolution.
    let total_lines = src.lines().count() as u32;
    let waivers = waiver::extract(&lexed, total_lines);
    let mut used = vec![false; waivers.len()];
    for f in findings.iter_mut() {
        if f.rule == "waiver-hygiene" {
            continue;
        }
        for (wi, w) in waivers.iter().enumerate() {
            if w.malformed.is_some() || w.rule != f.rule {
                continue;
            }
            if w.file_level || w.target_line == f.line {
                f.status = Status::Waived;
                used[wi] = true;
                break;
            }
        }
    }
    // Waiver hygiene: malformed, unknown-rule, and unused waivers are
    // findings in their own right (and cannot themselves be waived).
    for (wi, w) in waivers.iter().enumerate() {
        if let Some(why) = &w.malformed {
            findings.push(Finding {
                rule: "waiver-hygiene",
                file: rel.to_string(),
                line: w.line,
                snippet: "bp-lint: allow".to_string(),
                message: format!("malformed waiver: {why}"),
                status: Status::Active,
            });
        } else if !rules::is_known_rule(&w.rule) {
            findings.push(Finding {
                rule: "waiver-hygiene",
                file: rel.to_string(),
                line: w.line,
                snippet: w.rule.clone(),
                message: format!("waiver names unknown rule `{}`", w.rule),
                status: Status::Active,
            });
        } else if !used[wi] {
            findings.push(Finding {
                rule: "waiver-hygiene",
                file: rel.to_string(),
                line: w.line,
                snippet: w.rule.clone(),
                message: format!("waiver for `{}` suppresses nothing — remove it", w.rule),
                status: Status::Active,
            });
        }
    }
    report.findings.append(&mut findings);
}

use report::Finding;

/// Collects every `.rs` file under `crates/*/src` and the root `src/`,
/// as sorted workspace-relative paths with forward slashes.
fn workspace_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(root, &src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(root, &root_src, &mut out)?;
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (sorted traversal).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            collect_rs(root, &entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = entry
                .strip_prefix(root)
                .map_err(|e| LintError::Io(e.to_string()))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Directory entries, sorted by path for deterministic traversal.
fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    let mut entries = Vec::new();
    for e in rd {
        let e = e.map_err(|e| LintError::Io(e.to_string()))?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}

/// Loads the baseline file, treating a missing file as empty.
pub fn load_baseline(path: &Path) -> Result<Baseline, LintError> {
    match fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(LintError::Io(format!("{}: {e}", path.display()))),
    }
}
