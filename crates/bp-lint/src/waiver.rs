//! Waiver comments: the escape hatch, and the lint on the escape hatch.
//!
//! A rule violation that is *intentional* — the bench timing layer reading
//! the wall clock, the fault injector panicking on purpose — is silenced
//! with an inline waiver comment:
//!
//! ```text
//! // bp-lint: allow(determinism-time) reason="bench wall-clock table is a diagnostic, not a result"
//! let started = Instant::now();
//! ```
//!
//! A waiver on its own line applies to the next line that contains code; a
//! trailing waiver applies to its own line; `allow-file(...)` at any point
//! waives the rule for the whole file. Waivers are themselves linted: a
//! waiver with an unknown rule name, a missing or empty reason, or one
//! that suppresses nothing (stale after a fix) is a `waiver-hygiene`
//! finding. This keeps the waiver set honest — every waiver in the tree
//! names a real finding and a real reason.

use crate::lexer::{Lexed, LineComment};

/// A parsed (or rejected) waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the comment sits on.
    pub line: u32,
    /// The line this waiver suppresses findings on (same line if the
    /// comment trails code, otherwise the next line with code).
    /// Meaningless for file-level waivers.
    pub target_line: u32,
    /// The rule being waived.
    pub rule: String,
    /// True for `allow-file(...)`: applies to the whole file.
    pub file_level: bool,
    /// The stated reason (non-empty if well-formed).
    pub reason: String,
    /// Set if the comment looked like a waiver but failed to parse;
    /// carries the parse failure.
    pub malformed: Option<String>,
}

/// Extracts every waiver comment from a lexed file.
pub fn extract(lexed: &Lexed, total_lines: u32) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        if let Some(w) = parse_comment(c) {
            let mut w = w;
            if !w.file_level {
                w.target_line = resolve_target(lexed, c.line, total_lines);
            }
            out.push(w);
        }
    }
    out
}

/// A waiver on a comment-only line covers the next line with code; a
/// trailing waiver covers its own line.
fn resolve_target(lexed: &Lexed, comment_line: u32, total_lines: u32) -> u32 {
    if lexed.line_has_code(comment_line) {
        return comment_line;
    }
    let mut l = comment_line + 1;
    while l <= total_lines {
        if lexed.line_has_code(l) {
            return l;
        }
        l += 1;
    }
    comment_line
}

/// Parses one comment; returns `None` if it is not waiver-shaped at all.
fn parse_comment(c: &LineComment) -> Option<Waiver> {
    let text = c.text.trim();
    let rest = text.strip_prefix("bp-lint:")?.trim();
    let mut w = Waiver {
        line: c.line,
        target_line: c.line,
        rule: String::new(),
        file_level: false,
        reason: String::new(),
        malformed: None,
    };
    let after_allow = if let Some(r) = rest.strip_prefix("allow-file") {
        w.file_level = true;
        r
    } else if let Some(r) = rest.strip_prefix("allow") {
        r
    } else {
        w.malformed = Some(format!(
            "expected `allow(<rule>)` or `allow-file(<rule>)`, found `{rest}`"
        ));
        return Some(w);
    };
    let after_allow = after_allow.trim_start();
    let Some(open) = after_allow.strip_prefix('(') else {
        w.malformed = Some("missing `(` after allow".to_string());
        return Some(w);
    };
    let Some(close) = open.find(')') else {
        w.malformed = Some("missing `)` after rule name".to_string());
        return Some(w);
    };
    w.rule = open[..close].trim().to_string();
    if w.rule.is_empty() {
        w.malformed = Some("empty rule name".to_string());
        return Some(w);
    }
    let tail = open[close + 1..].trim();
    let Some(reason_val) = tail.strip_prefix("reason=") else {
        w.malformed = Some("missing `reason=\"...\"`".to_string());
        return Some(w);
    };
    let reason_val = reason_val.trim();
    let Some(inner) = reason_val
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
    else {
        w.malformed = Some("reason must be a double-quoted string".to_string());
        return Some(w);
    };
    if inner.trim().is_empty() {
        w.malformed = Some("reason must be non-empty".to_string());
        return Some(w);
    }
    w.reason = inner.to_string();
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn well_formed_waiver_parses() {
        let src = "// bp-lint: allow(determinism-time) reason=\"bench diagnostics\"\nlet t = Instant::now();\n";
        let ws = extract(&lex(src), 2);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].malformed.is_none());
        assert_eq!(ws[0].rule, "determinism-time");
        assert_eq!(ws[0].target_line, 2);
    }

    #[test]
    fn trailing_waiver_targets_own_line() {
        let src = "let t = now(); // bp-lint: allow(determinism-time) reason=\"ok\"\n";
        let ws = extract(&lex(src), 1);
        assert_eq!(ws[0].target_line, 1);
    }

    #[test]
    fn stacked_waivers_share_a_target() {
        let src = "// bp-lint: allow(a) reason=\"x\"\n// bp-lint: allow(b) reason=\"y\"\ncode();\n";
        let ws = extract(&lex(src), 3);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].target_line, 3);
        assert_eq!(ws[1].target_line, 3);
    }

    #[test]
    fn empty_reason_is_malformed() {
        let src = "// bp-lint: allow(panic-freedom) reason=\"  \"\nx.unwrap();\n";
        let ws = extract(&lex(src), 2);
        assert!(ws[0].malformed.is_some());
    }

    #[test]
    fn missing_reason_is_malformed() {
        let src = "// bp-lint: allow(panic-freedom)\nx.unwrap();\n";
        let ws = extract(&lex(src), 2);
        assert!(ws[0].malformed.is_some());
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let src = "// just a comment about bp-lint the tool\ncode();\n";
        assert!(extract(&lex(src), 2).is_empty());
    }

    #[test]
    fn file_level_waiver() {
        let src = "// bp-lint: allow-file(determinism-env) reason=\"operator knobs\"\n";
        let ws = extract(&lex(src), 1);
        assert!(ws[0].file_level);
        assert!(ws[0].malformed.is_none());
    }
}
