//! The grandfather baseline: shrink-only, checked in, and honest.
//!
//! A baseline entry says "this violation predates the rule; it is debt,
//! not license". Entries are keyed by `(rule, file, snippet)` with a
//! count — deliberately *not* by line number, so unrelated edits above a
//! grandfathered site do not churn the file. The policy is shrink-only,
//! enforced in both directions:
//!
//! * a finding **not** covered by the baseline is new debt → the run fails;
//! * a baseline entry matching **nothing** (or more entries than findings)
//!   is stale → the run fails until the entry is deleted.
//!
//! `bp_lint --write-baseline` regenerates the file from the current tree;
//! review the diff like any other code change. The final state this
//! repository maintains is an *empty* baseline — the file exists to prove
//! the mechanism and to catch anyone trying to grow it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::{json_str, Finding, Report, Status};
use crate::LintError;

/// Parsed baseline: allowance count per `(rule, file, snippet)`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses the baseline JSON document.
    ///
    /// The format is the output of `--write-baseline`: a `version` field
    /// and an `entries` array of `{rule, file, snippet, count}` objects.
    /// Parsing is a small hand-rolled scanner (the workspace is
    /// dependency-free); it accepts exactly what the writer emits.
    pub fn parse(text: &str) -> Result<Self, LintError> {
        let mut entries = BTreeMap::new();
        // Objects are one-per-line in the written format; tolerate any
        // whitespace by scanning for the four known keys per object.
        let mut rest = text;
        while let Some(start) = rest.find('{') {
            let Some(end) = rest[start + 1..].find('}') else {
                break;
            };
            let obj = &rest[start + 1..start + 1 + end];
            rest = &rest[start + 1 + end + 1..];
            if !obj.contains("\"rule\"") {
                continue; // the outer document object
            }
            let rule = extract_str(obj, "rule")?;
            let file = extract_str(obj, "file")?;
            let snippet = extract_str(obj, "snippet")?;
            let count = extract_count(obj)?;
            *entries.entry((rule, file, snippet)).or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Applies the baseline to a report: marks up to `count` active
    /// findings per key as [`Status::Baselined`], and records stale
    /// entries (keys with unused allowance) in the report.
    ///
    /// Findings must already be normalized (sorted) so that which
    /// duplicate gets baselined is deterministic.
    pub fn apply(&self, report: &mut Report) {
        let mut budget: BTreeMap<&(String, String, String), usize> = BTreeMap::new();
        for (k, v) in &self.entries {
            budget.insert(k, *v);
        }
        for f in report.findings.iter_mut() {
            if f.status != Status::Active {
                continue;
            }
            let key = (f.rule.to_string(), f.file.clone(), f.snippet.clone());
            if let Some(left) = budget.get_mut(&key) {
                if *left > 0 {
                    *left -= 1;
                    f.status = Status::Baselined;
                }
            }
        }
        for (k, left) in budget {
            if left > 0 {
                report
                    .stale_baseline
                    .push(format!("{} @ {} `{}` x{}", k.0, k.1, k.2, left));
            }
        }
    }

    /// Renders a baseline capturing every currently-active finding.
    pub fn render_from(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
        for f in findings.iter().filter(|f| f.status == Status::Active) {
            *counts
                .entry((f.rule, f.file.as_str(), f.snippet.as_str()))
                .or_insert(0) += 1;
        }
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, ((rule, file, snippet), count)) in counts.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"snippet\": {}, \"count\": {}}}",
                json_str(rule),
                json_str(file),
                json_str(snippet),
                count
            );
        }
        if !counts.is_empty() {
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Extracts `"key": "value"` from a flat JSON object body.
fn extract_str(obj: &str, key: &str) -> Result<String, LintError> {
    let pat = format!("\"{key}\"");
    let Some(at) = obj.find(&pat) else {
        return Err(LintError::Baseline(format!("missing `{key}` in entry")));
    };
    let after = &obj[at + pat.len()..];
    let Some(colon) = after.find(':') else {
        return Err(LintError::Baseline(format!("missing `:` after `{key}`")));
    };
    let after = after[colon + 1..].trim_start();
    let Some(body) = after.strip_prefix('"') else {
        return Err(LintError::Baseline(format!("`{key}` must be a string")));
    };
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(e) => out.push(e),
                None => break,
            },
            '"' => return Ok(out),
            c => out.push(c),
        }
    }
    Err(LintError::Baseline(format!("unterminated `{key}` string")))
}

/// Extracts the `count` field from a flat JSON object body.
fn extract_count(obj: &str) -> Result<usize, LintError> {
    let Some(at) = obj.find("\"count\"") else {
        return Err(LintError::Baseline("missing `count` in entry".to_string()));
    };
    let after = &obj[at + 7..];
    let Some(colon) = after.find(':') else {
        return Err(LintError::Baseline("missing `:` after `count`".to_string()));
    };
    let digits: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits
        .parse()
        .map_err(|_| LintError::Baseline("`count` must be a number".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, Report, Status};

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
            status: Status::Active,
        }
    }

    #[test]
    fn roundtrip_and_apply() {
        let findings = vec![
            finding("panic-freedom", "crates/x/src/lib.rs", ".unwrap()"),
            finding("panic-freedom", "crates/x/src/lib.rs", ".unwrap()"),
        ];
        let text = Baseline::render_from(&findings);
        let b = Baseline::parse(&text).expect("parses own output");
        let mut report = Report {
            findings,
            ..Default::default()
        };
        report.normalize();
        b.apply(&mut report);
        assert_eq!(report.count(Status::Baselined), 2);
        assert!(report.is_clean());
    }

    #[test]
    fn excess_findings_stay_active() {
        let one = vec![finding("panic-freedom", "a.rs", ".unwrap()")];
        let text = Baseline::render_from(&one);
        let b = Baseline::parse(&text).expect("parses");
        let mut report = Report {
            findings: vec![
                finding("panic-freedom", "a.rs", ".unwrap()"),
                finding("panic-freedom", "a.rs", ".unwrap()"),
            ],
            ..Default::default()
        };
        report.normalize();
        b.apply(&mut report);
        assert_eq!(report.count(Status::Baselined), 1);
        assert_eq!(report.count(Status::Active), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn stale_entries_fail_shrink_only() {
        let old = vec![finding("panic-freedom", "gone.rs", ".unwrap()")];
        let b = Baseline::parse(&Baseline::render_from(&old)).expect("parses");
        let mut report = Report::default();
        report.normalize();
        b.apply(&mut report);
        assert_eq!(report.stale_baseline.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{\n  \"version\": 1,\n  \"entries\": []\n}\n").expect("parses");
        let mut report = Report::default();
        b.apply(&mut report);
        assert!(report.stale_baseline.is_empty());
    }
}
