//! Findings and deterministic report emission.
//!
//! The JSON report is a CI artifact and a diffable record: two runs over
//! the same tree must produce byte-identical output. That rules out
//! timestamps, absolute paths, hash-map iteration order, and float
//! formatting — everything here is integer counts, workspace-relative
//! paths with forward slashes, and explicitly sorted vectors, serialized
//! by a hand-rolled writer with a fixed key order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How a finding was disposed of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// Live violation: fails the run.
    Active,
    /// Suppressed by an inline `// bp-lint: allow(...)` waiver.
    Waived,
    /// Grandfathered by the checked-in baseline file.
    Baselined,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Active => "active",
            Status::Waived => "waived",
            Status::Baselined => "baselined",
        }
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (e.g. `determinism-time`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending token(s), normalized (e.g. `HashMap`, `.unwrap()`).
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
    /// Disposition after waiver and baseline resolution.
    pub status: Status,
}

/// One `unsafe` occurrence, compliant or not (the audit inventory).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Whether an adjacent `// SAFETY:` comment justifies it.
    pub has_safety: bool,
}

/// The complete result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule, snippet).
    pub findings: Vec<Finding>,
    /// Every `unsafe` keyword in the scanned tree.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Baseline entries that matched nothing (shrink-only violation).
    pub stale_baseline: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts all vectors into their canonical emission order.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.snippet).cmp(&(&b.file, b.line, b.rule, &b.snippet))
        });
        self.unsafe_inventory
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.stale_baseline.sort();
    }

    /// Count of findings with the given status.
    pub fn count(&self, status: Status) -> usize {
        self.findings.iter().filter(|f| f.status == status).count()
    }

    /// True when the run should exit 0: nothing active and no stale
    /// baseline entries.
    pub fn is_clean(&self) -> bool {
        self.count(Status::Active) == 0 && self.stale_baseline.is_empty()
    }

    /// Active-finding count per rule, sorted by rule id.
    fn per_rule(&self, status: Status) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in self.findings.iter().filter(|f| f.status == status) {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }

    /// Renders the deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n  \"files_scanned\": ");
        let _ = write!(s, "{}", self.files_scanned);
        s.push_str(",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"status\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.snippet),
                json_str(f.status.as_str()),
                json_str(&f.message),
            );
        }
        if !self.findings.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n  \"unsafe_inventory\": [");
        for (i, u) in self.unsafe_inventory.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"file\": {}, \"line\": {}, \"has_safety\": {}}}",
                json_str(&u.file),
                u.line,
                u.has_safety
            );
        }
        if !self.unsafe_inventory.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n  \"stale_baseline\": [");
        for (i, k) in self.stale_baseline.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    {}", json_str(k));
        }
        if !self.stale_baseline.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n  \"summary\": {");
        let _ = write!(
            s,
            "\n    \"active\": {}, \"waived\": {}, \"baselined\": {}, \"stale_baseline\": {},",
            self.count(Status::Active),
            self.count(Status::Waived),
            self.count(Status::Baselined),
            self.stale_baseline.len()
        );
        s.push_str("\n    \"active_per_rule\": {");
        let per = self.per_rule(Status::Active);
        for (i, (rule, n)) in per.iter().enumerate() {
            s.push_str(if i == 0 { "" } else { "," });
            let _ = write!(s, "\n      {}: {}", json_str(rule), n);
        }
        if !per.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("}\n  }\n}\n");
        s
    }

    /// Renders the human-readable text report.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            if f.status != Status::Active {
                continue;
            }
            let _ = writeln!(
                s,
                "{}:{}: [{}] {} ({})",
                f.file, f.line, f.rule, f.message, f.snippet
            );
        }
        for k in &self.stale_baseline {
            let _ = writeln!(
                s,
                "baseline: stale entry `{k}` matches nothing — remove it (shrink-only policy)"
            );
        }
        let unsound = self
            .unsafe_inventory
            .iter()
            .filter(|u| !u.has_safety)
            .count();
        let _ = writeln!(
            s,
            "bp-lint: {} file(s), {} active, {} waived, {} baselined, {} stale baseline entr{}; unsafe inventory: {} site(s), {} missing SAFETY",
            self.files_scanned,
            self.count(Status::Active),
            self.count(Status::Waived),
            self.count(Status::Baselined),
            self.stale_baseline.len(),
            if self.stale_baseline.len() == 1 { "y" } else { "ies" },
            self.unsafe_inventory.len(),
            unsound,
        );
        s
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_under_normalize() {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "b-rule",
                    file: "z.rs".into(),
                    line: 2,
                    snippet: "y".into(),
                    message: "m".into(),
                    status: Status::Active,
                },
                Finding {
                    rule: "a-rule",
                    file: "a.rs".into(),
                    line: 9,
                    snippet: "x".into(),
                    message: "m".into(),
                    status: Status::Waived,
                },
            ],
            ..Default::default()
        };
        r.normalize();
        let j1 = r.to_json();
        r.normalize();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"active\": 1"));
        let a = j1.find("a.rs");
        let z = j1.find("z.rs");
        assert!(a < z, "findings must be file-sorted");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
