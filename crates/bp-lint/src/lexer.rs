//! A token-level scanner for Rust source.
//!
//! `bp-lint` does not parse Rust; it lexes it. The lexer's one job is to
//! separate *code* from *non-code* so that rules never fire on the contents
//! of comments, string literals, or doc examples: a `HashMap` mentioned in a
//! doc comment is documentation, not a determinism violation. What survives
//! is a flat stream of identifier/punctuation tokens with line numbers,
//! plus the line comments (which carry `// SAFETY:` and `// bp-lint:`
//! waiver annotations) and string literals (whose inline format captures
//! like `{keys_table:?}` the secret-hygiene rules still need to see).
//!
//! The lexer handles the full set of Rust lexical edge cases that matter
//! for not mis-classifying code as comment or vice versa: nested block
//! comments, raw strings with arbitrary `#` guards, byte strings, char
//! literals vs. lifetimes, and numeric literals abutting the range
//! operator (`0..10`).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `HashMap`, `unwrap`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `!`, `{`, ...).
    Punct(char),
    /// A string literal, with its *content* (escapes left as written).
    Str(String),
    /// Any other literal (number, char, byte string); content irrelevant
    /// to every rule, so it is not retained.
    Lit,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A `//` line comment: the text after the slashes, trimmed, plus its line.
///
/// Doc comments (`///`, `//!`) are captured too — the extra slash or bang
/// ends up at the front of `text` and simply never matches a waiver or
/// SAFETY prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based source line the comment sits on.
    pub line: u32,
    /// Comment text after the leading `//`, trimmed.
    pub text: String,
}

/// Output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<LineComment>,
}

impl Lexed {
    /// Returns true if any code token starts on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Tokens are in line order; a binary search would work, but files
        // are small and this is only called while resolving waivers.
        self.tokens.iter().any(|t| t.line == line)
    }
}

/// Lexes one file's source text.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                out.comments.push(LineComment {
                    line,
                    text: text.trim().to_string(),
                });
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (content, j, nl) = lex_string(&chars, i + 1);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                let (tok, j, nl) = lex_prefixed_string(&chars, i);
                out.tokens.push(Token { tok, line });
                line += nl;
                i = j;
            }
            '\'' => {
                // Char literal or lifetime. A lifetime is `'` followed by an
                // identifier start NOT followed by a closing quote
                // (`'a` vs `'a'`); an escape (`'\n'`) is always a char.
                if i + 1 < n && chars[i + 1] == '\\' {
                    let mut j = i + 2;
                    if j < n {
                        j += 1; // the escaped char
                    }
                    // Consume to closing quote (handles \x41, \u{..}).
                    while j < n && chars[j] != '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                    i = j + 1;
                } else if i + 2 < n && is_ident_start(chars[i + 1]) && chars[i + 2] != '\'' {
                    // Lifetime: skip the quote; the identifier lexes next
                    // round but we drop it so `'static` never looks like the
                    // `static` keyword.
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    i = j;
                } else {
                    // 'x' char literal.
                    let mut j = i + 1;
                    while j < n && chars[j] != '\'' && chars[j] != '\n' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                    i = j + 1;
                }
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Loose numeric literal: digits, underscores, letters
                // (0xff, 1e9, 1_000u64) and a single fractional dot — but
                // `..` is the range operator, not part of the number.
                let mut j = i + 1;
                while j < n {
                    let d = chars[j];
                    if d == '.' {
                        if j + 1 < n && chars[j + 1] == '.' {
                            break;
                        }
                        j += 1;
                    } else if d == '_' || d.is_ascii_alphanumeric() {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Lexes a plain `"..."` string body starting just after the opening quote.
/// Returns (content, index past closing quote, newlines consumed).
fn lex_string(chars: &[char], start: usize) -> (String, usize, u32) {
    let mut j = start;
    let mut nl = 0u32;
    let n = chars.len();
    let mut content = String::new();
    while j < n {
        match chars[j] {
            '\\' if j + 1 < n => {
                content.push(chars[j]);
                content.push(chars[j + 1]);
                if chars[j + 1] == '\n' {
                    nl += 1;
                }
                j += 2;
            }
            '"' => return (content, j + 1, nl),
            c => {
                if c == '\n' {
                    nl += 1;
                }
                content.push(c);
                j += 1;
            }
        }
    }
    (content, j, nl)
}

/// Does `r`/`b` at `i` introduce a raw/byte string (or byte char) literal,
/// as opposed to a plain identifier starting with that letter?
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    match chars[i] {
        'r' => {
            // r" or r#...#"
            let mut j = i + 1;
            while j < n && chars[j] == '#' {
                j += 1;
            }
            j < n && chars[j] == '"' && (j > i + 1 || chars[i + 1] == '"')
        }
        'b' => {
            if i + 1 >= n {
                return false;
            }
            match chars[i + 1] {
                '"' | '\'' => true,
                'r' => {
                    let mut j = i + 2;
                    while j < n && chars[j] == '#' {
                        j += 1;
                    }
                    j < n && chars[j] == '"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'` starting at
/// the prefix letter. Returns (token, index past literal, newlines).
fn lex_prefixed_string(chars: &[char], i: usize) -> (Tok, usize, u32) {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '\'' {
            // b'x' byte char.
            j += 1;
            if j < n && chars[j] == '\\' {
                j += 2;
            }
            while j < n && chars[j] != '\'' {
                j += 1;
            }
            return (Tok::Lit, (j + 1).min(n), 0);
        }
    }
    let raw = j < n && chars[j] == 'r';
    if raw {
        j += 1;
    }
    let mut guards = 0usize;
    while j < n && chars[j] == '#' {
        guards += 1;
        j += 1;
    }
    // Opening quote.
    j += 1;
    let mut nl = 0u32;
    let mut content = String::new();
    while j < n {
        if chars[j] == '\n' {
            nl += 1;
            content.push('\n');
            j += 1;
        } else if !raw && chars[j] == '\\' && j + 1 < n {
            content.push(chars[j]);
            content.push(chars[j + 1]);
            // A line-continuation escape still consumes a newline; losing
            // it would shift every later token's line and mis-scope
            // `#[cfg(test)]` ranges below the literal.
            if chars[j + 1] == '\n' {
                nl += 1;
            }
            j += 2;
        } else if chars[j] == '"' {
            // Check the closing guard.
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < guards && chars[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == guards {
                return (Tok::Str(content), k, nl);
            }
            content.push('"');
            j += 1;
        } else {
            content.push(chars[j]);
            j += 1;
        }
    }
    (Tok::Str(content), j, nl)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || (!c.is_ascii() && c.is_alphabetic())
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || (!c.is_ascii() && c.is_alphanumeric())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
// HashMap in a comment
/* HashMap /* nested */ still comment */
let s = "HashMap in a string";
let r = r#"HashMap raw "quoted" inner"#;
let real = HashMap::new();
"##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The lifetime name itself is dropped.
        assert_eq!(ids.iter().filter(|s| *s == "a").count(), 0);
    }

    #[test]
    fn char_literals_do_not_swallow_code() {
        let src = "let c = 'x'; let d = '\\n'; unwrap_me();";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap_me".to_string()));
    }

    #[test]
    fn ranges_do_not_merge_into_numbers() {
        let src = "for i in 0..10 { body(i); }";
        let toks = lex(src);
        assert!(toks
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Punct('.'))));
        assert!(idents(src).contains(&"body".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\none\";\nlet after = 1;";
        let toks = lex(src);
        let after = toks
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "after"));
        assert_eq!(after.map(|t| t.line), Some(3));
    }

    #[test]
    fn guarded_raw_strings_keep_line_numbers() {
        // `#`-count >= 2, inner `"#` sequences, and byte-raw variants must
        // all lex as one token without losing lines; the `after` marker
        // checks the accounting.
        let src =
            "let a = r##\"one\ntwo \"# three\nfour\"##;\nlet b = br##\"x\ny\"##;\nlet after = 1;\n";
        let toks = lex(src);
        let after = toks
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "after"));
        assert_eq!(after.map(|t| t.line), Some(6));
        // The guard hashes never leak out as punctuation tokens.
        assert!(!toks
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Punct('#'))));
    }

    #[test]
    fn escaped_newline_in_byte_string_counts_the_line() {
        // Regression: the `\<newline>` line-continuation escape inside a
        // prefixed (byte) string used to be skipped without counting the
        // newline, shifting every later token up one line.
        let src = "let a = b\"one\\\ntwo\";\nlet after = 1;\n";
        let toks = lex(src);
        let after = toks
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "after"));
        assert_eq!(after.map(|t| t.line), Some(3));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1; // SAFETY: trailing\n// bp-lint: allow(x) reason=\"y\"\n";
        let toks = lex(src);
        assert_eq!(toks.comments.len(), 2);
        assert_eq!(toks.comments[0].line, 1);
        assert!(toks.comments[0].text.starts_with("SAFETY:"));
        assert_eq!(toks.comments[1].line, 2);
    }
}
