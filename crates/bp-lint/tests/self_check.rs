//! The lint runs clean on the workspace that ships it, and its machine
//! output is byte-deterministic — the two properties CI's
//! `lint-invariants` job relies on.

use bp_lint::baseline::Baseline;
use bp_lint::{load_baseline, run_lint, Config};
use std::path::{Path, PathBuf};

/// Walks up from this crate's manifest dir to the workspace root.
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        assert!(dir.pop(), "no workspace root above CARGO_MANIFEST_DIR");
    }
}

#[test]
fn workspace_is_clean_under_checked_in_baseline() {
    let root = workspace_root();
    let config = Config::workspace_default(&root);
    let baseline = load_baseline(&root.join("bp-lint.baseline.json")).expect("baseline parses");
    let report = run_lint(&config, &baseline).expect("lint runs");
    let active: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.status == bp_lint::report::Status::Active)
        .collect();
    assert!(
        active.is_empty(),
        "workspace has active lint findings:\n{}",
        report.to_text()
    );
    assert!(
        report.stale_baseline.is_empty(),
        "baseline must only shrink"
    );
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
}

#[test]
fn panic_freedom_and_secret_hygiene_carry_no_baseline_debt() {
    // The checked-in baseline must stay empty for these rules: new debt is
    // either fixed or waived with a reason, never grandfathered. The taint
    // rules replaced the v1 lexical `secret-format`/`secret-branch` pair
    // and inherit its no-debt policy; the workspace-level rules
    // (storage-budget, serve-lock-order) are unwaivable *and*
    // unbaselineable.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("bp-lint.baseline.json")).expect("read baseline");
    for rule in [
        "panic-freedom",
        "secret-debug",
        "secret-taint-branch",
        "secret-taint-format",
        "secret-taint-index",
        "secret-taint-store",
        "serve-hot-lock",
        "serve-lock-order",
        "storage-budget",
    ] {
        assert!(
            !text.contains(rule),
            "baseline contains grandfathered `{rule}` debt"
        );
    }
}

#[test]
fn json_report_is_byte_deterministic() {
    let root = workspace_root();
    let config = Config::workspace_default(&root);
    let baseline = Baseline::default();
    let a = run_lint(&config, &baseline).expect("first run").to_json();
    let b = run_lint(&config, &baseline).expect("second run").to_json();
    assert_eq!(a, b, "JSON output must be byte-identical across runs");
    assert!(!a.contains("\\u0000"));
}

#[test]
fn unsafe_inventory_is_empty_or_fully_justified() {
    let root = workspace_root();
    let config = Config::workspace_default(&root);
    let report = run_lint(&config, &Baseline::default()).expect("lint runs");
    for site in &report.unsafe_inventory {
        assert!(
            site.has_safety,
            "unsafe block without SAFETY comment at {}:{}",
            site.file, site.line
        );
    }
}

/// Introducing a violation into a scanned fixture tree makes the lint
/// fail — the acceptance check that the tool actually bites.
#[test]
fn injected_violation_is_caught() {
    let dir = std::env::temp_dir().join("bp-lint-self-check-fixture");
    let src_dir = dir.join("crates").join("bp-common").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture tree");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write fixture");

    let config = Config::workspace_default(&dir);
    let report = run_lint(&config, &Baseline::default()).expect("lint runs");
    assert!(!report.is_clean(), "injected unwrap must be a finding");
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "panic-freedom" && f.file == "crates/bp-common/src/lib.rs"));
    // The fixture tree has no budgets.toml: the manifest's absence is
    // itself a storage-budget finding, not a silent pass.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "storage-budget" && f.message.contains("missing")));

    std::fs::remove_dir_all(&dir).ok();
    let _ = Path::new("unused");
}
