//! Fixture tests: each rule gets a positive case (the violation fires), a
//! negative case (compliant code stays silent), a waived case, and the
//! malformed-waiver case; plus the self-check that the real workspace is
//! clean and that JSON output is byte-deterministic.

use bp_lint::report::{Report, Status};
use bp_lint::scope::{FileClass, FileKind};
use bp_lint::{scan_file, Config};
use std::collections::BTreeSet;

/// Lints `src` as if it were the named workspace-relative library file,
/// under a config that puts the fixture crate in every rule's scope.
fn lint_src(rel: &str, src: &str) -> Report {
    let mut cfg = Config::workspace_default("/nonexistent");
    cfg.determinism_crates.insert("fix".to_string());
    cfg.secret_scope_crates.insert("fix".to_string());
    cfg.cipher_internal_suffixes
        .push("fix/src/cipher_core.rs".to_string());
    let class = FileClass {
        crate_name: "fix".to_string(),
        kind: if rel.ends_with("main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        },
    };
    let mut report = Report::default();
    scan_file(&cfg, rel, &class, src, &mut report);
    report.normalize();
    report
}

fn rules_fired(report: &Report, status: Status) -> BTreeSet<&'static str> {
    report
        .findings
        .iter()
        .filter(|f| f.status == status)
        .map(|f| f.rule)
        .collect()
}

fn active(report: &Report) -> BTreeSet<&'static str> {
    rules_fired(report, Status::Active)
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_positive_each_category_fires() {
    let src = r#"
use std::collections::HashMap;
use std::time::Instant;

pub fn bad() -> u64 {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
    let id = std::thread::current().id();
    let v = std::env::var("SOME_KNOB");
    let _ = (m, t, id, v);
    0
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let fired = active(&report);
    assert!(fired.contains("determinism-collections"), "{fired:?}");
    assert!(fired.contains("determinism-time"), "{fired:?}");
    assert!(fired.contains("determinism-thread-id"), "{fired:?}");
    assert!(fired.contains("determinism-env"), "{fired:?}");
}

#[test]
fn determinism_negative_btreemap_and_tests_are_silent() {
    let src = r#"
use std::collections::BTreeMap;

pub fn good() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    // Test code may use wall clocks and hash maps freely.
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn t() {
        let _ = (HashMap::<u8, u8>::new(), Instant::now());
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn determinism_out_of_scope_crate_is_silent() {
    let src = "pub fn f() { let _ = std::time::Instant::now(); }\n";
    let mut cfg = Config::workspace_default("/nonexistent");
    cfg.secret_scope_crates.clear();
    let class = FileClass {
        crate_name: "not-in-scope".to_string(),
        kind: FileKind::Lib,
    };
    let mut report = Report::default();
    scan_file(
        &cfg,
        "crates/not-in-scope/src/lib.rs",
        &class,
        src,
        &mut report,
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn determinism_waived_line_is_recorded_not_active() {
    let src = r#"
pub fn knob() -> Option<String> {
    // bp-lint: allow(determinism-env) reason="operator knob, never results"
    std::env::var("FIX_KNOB").ok()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
    assert!(rules_fired(&report, Status::Waived).contains("determinism-env"));
}

#[test]
fn determinism_file_level_waiver_covers_whole_file() {
    let src = r#"
// bp-lint: allow-file(determinism-time) reason="wall-clock diagnostics only"
use std::time::Instant;

pub fn a() -> Instant {
    Instant::now()
}

pub fn b() -> Instant {
    Instant::now()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
    let waived = report
        .findings
        .iter()
        .filter(|f| f.status == Status::Waived && f.rule == "determinism-time")
        .count();
    assert!(waived >= 2, "{:?}", report.findings);
}

// -------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_positive_unwrap_expect_panic() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    if x.is_none() {
        panic!("boom");
    }
    let y: Result<u32, ()> = Ok(1);
    x.unwrap() + y.expect("fine")
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let n = report
        .findings
        .iter()
        .filter(|f| f.rule == "panic-freedom" && f.status == Status::Active)
        .count();
    assert_eq!(n, 3, "{:?}", report.findings);
}

#[test]
fn panic_freedom_negative_tests_bins_and_paths() {
    let src = r#"
pub fn good(x: Option<u32>) -> u32 {
    // `Result::unwrap` named in a path position is not a call on a value.
    let f: fn(Result<u32, std::fmt::Error>) -> u32 = Result::unwrap;
    let _ = f;
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u32).unwrap();
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);

    // Binary entry points may panic on bad CLI input.
    let report = lint_src(
        "crates/fix/src/main.rs",
        "fn main() { panic!(\"usage\"); }\n",
    );
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn panic_freedom_waiver_must_target_the_finding_line() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // bp-lint: allow(panic-freedom) reason="invariant: caller checked"
    x.expect("checked")
}

pub fn g(x: Option<u32>) -> u32 {
    x.expect("not waived")
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let active: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.status == Status::Active)
        .collect();
    assert_eq!(active.len(), 1, "{:?}", report.findings);
    assert_eq!(active[0].rule, "panic-freedom");
    assert_eq!(active[0].line, 8);
}

// ------------------------------------------------------------- secret-hygiene

#[test]
fn secret_debug_positive_derive_and_impl() {
    let src = r#"
#[derive(Debug, Clone)]
pub struct KeyManager {
    keys: Vec<u64>,
}

pub struct Other {
    pub round_keys: [u64; 4],
}

impl std::fmt::Display for Other {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "other")
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let n = report
        .findings
        .iter()
        .filter(|f| f.rule == "secret-debug" && f.status == Status::Active)
        .count();
    assert_eq!(n, 2, "{:?}", report.findings);
}

#[test]
fn secret_format_positive_key_in_format_string() {
    let src = r#"
pub fn leak(keys: &[u64]) -> String {
    format!("keys = {:x?}", keys)
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("secret-format"),
        "{:?}",
        report.findings
    );
}

#[test]
fn secret_branch_positive_and_cipher_internal_exempt() {
    let src = r#"
pub fn timing_leak(keys: &[u64]) -> u32 {
    if keys[0] & 1 == 1 {
        1
    } else {
        0
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("secret-branch"),
        "{:?}",
        report.findings
    );

    // The same code inside an audited cipher internal is exempt.
    let report = lint_src("crates/fix/src/cipher_core.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn secret_negative_shape_reads_and_nonsecret_names() {
    let src = r#"
#[derive(Debug, Clone)]
pub struct Stats {
    pub hits: u64,
}

pub fn ok(keys: &[u64], stats: &Stats) -> String {
    // Branching on a secret container's *shape* is allowed.
    if keys.is_empty() {
        return String::new();
    }
    format!("{} hits over {} keys", stats.hits, keys.len())
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn secret_scope_is_per_crate() {
    let src = "pub fn f(keys: &[u64]) -> String { format!(\"{:?}\", keys) }\n";
    let mut cfg = Config::workspace_default("/nonexistent");
    cfg.determinism_crates.clear();
    let class = FileClass {
        crate_name: "no-secrets-here".to_string(),
        kind: FileKind::Lib,
    };
    let mut report = Report::default();
    scan_file(
        &cfg,
        "crates/no-secrets-here/src/lib.rs",
        &class,
        src,
        &mut report,
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// --------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_audit_positive_missing_safety_comment() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("unsafe-audit"),
        "{:?}",
        report.findings
    );
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(!report.unsafe_inventory[0].has_safety);
}

#[test]
fn unsafe_audit_negative_safety_comment_adjacent() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(report.unsafe_inventory[0].has_safety);
}

// ------------------------------------------------------------- waiver-hygiene

#[test]
fn waiver_without_reason_is_malformed() {
    let src = r#"
pub fn f() -> Option<String> {
    // bp-lint: allow(determinism-env)
    std::env::var("X").ok()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let fired = active(&report);
    // The malformed waiver suppresses nothing, so the original finding
    // stays active alongside the hygiene finding.
    assert!(fired.contains("waiver-hygiene"), "{:?}", report.findings);
    assert!(fired.contains("determinism-env"), "{:?}", report.findings);
}

#[test]
fn waiver_with_empty_reason_is_malformed() {
    let src = r#"
pub fn f() -> Option<String> {
    // bp-lint: allow(determinism-env) reason=""
    std::env::var("X").ok()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("waiver-hygiene"),
        "{:?}",
        report.findings
    );
}

#[test]
fn waiver_naming_unknown_rule_is_flagged() {
    let src = r#"
pub fn f() -> u32 {
    // bp-lint: allow(no-such-rule) reason="typo"
    0
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("waiver-hygiene"),
        "{:?}",
        report.findings
    );
}

#[test]
fn unused_waiver_is_flagged() {
    let src = r#"
pub fn f() -> u32 {
    // bp-lint: allow(panic-freedom) reason="nothing here panics anymore"
    0
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let hygiene: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "waiver-hygiene" && f.status == Status::Active)
        .collect();
    assert_eq!(hygiene.len(), 1, "{:?}", report.findings);
    assert!(hygiene[0].message.contains("suppresses nothing"));
}

// -------------------------------------------------------- lexer-level silence

#[test]
fn strings_comments_and_docs_never_fire() {
    let src = r#"
//! This module never calls `.unwrap()` or `HashMap::new()` — honest!

/// Returns the text "panic!" without panicking. See also `Instant::now`.
pub fn text() -> &'static str {
    "call .unwrap() or .expect(\"x\") or std::env::var(\"HOME\") here"
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}
