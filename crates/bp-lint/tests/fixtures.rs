//! Fixture tests: each rule gets a positive case (the violation fires), a
//! negative case (compliant code stays silent), a waived case, and the
//! malformed-waiver case; plus the self-check that the real workspace is
//! clean and that JSON output is byte-deterministic.

use bp_lint::baseline::Baseline;
use bp_lint::report::{Report, Status};
use bp_lint::scope::{FileClass, FileKind};
use bp_lint::{run_lint, scan_file, Config};
use std::collections::BTreeSet;

/// Lints `src` as if it were the named workspace-relative library file,
/// under a config that puts the fixture crate in every rule's scope:
/// `cipher_core.rs` plays the audited cipher internal, `codec_core.rs`
/// the secret-indexing codec, and `shard.rs` the serve hot path.
fn lint_src(rel: &str, src: &str) -> Report {
    let mut cfg = Config::workspace_default("/nonexistent");
    cfg.determinism_crates.insert("fix".to_string());
    cfg.secret_scope_crates.insert("fix".to_string());
    cfg.serve_crates.insert("fix".to_string());
    cfg.cipher_internal_suffixes
        .push("fix/src/cipher_core.rs".to_string());
    cfg.index_exempt_suffixes
        .push("fix/src/codec_core.rs".to_string());
    cfg.serve_hot_path_suffixes
        .push("fix/src/shard.rs".to_string());
    let class = FileClass {
        crate_name: "fix".to_string(),
        kind: if rel.ends_with("main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        },
    };
    let mut report = Report::default();
    scan_file(&cfg, rel, &class, src, &mut report);
    report.normalize();
    report
}

fn rules_fired(report: &Report, status: Status) -> BTreeSet<&'static str> {
    report
        .findings
        .iter()
        .filter(|f| f.status == status)
        .map(|f| f.rule)
        .collect()
}

fn active(report: &Report) -> BTreeSet<&'static str> {
    rules_fired(report, Status::Active)
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_positive_each_category_fires() {
    let src = r#"
use std::collections::HashMap;
use std::time::Instant;

pub fn bad() -> u64 {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
    let id = std::thread::current().id();
    let v = std::env::var("SOME_KNOB");
    let _ = (m, t, id, v);
    0
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let fired = active(&report);
    assert!(fired.contains("determinism-collections"), "{fired:?}");
    assert!(fired.contains("determinism-time"), "{fired:?}");
    assert!(fired.contains("determinism-thread-id"), "{fired:?}");
    assert!(fired.contains("determinism-env"), "{fired:?}");
}

#[test]
fn determinism_negative_btreemap_and_tests_are_silent() {
    let src = r#"
use std::collections::BTreeMap;

pub fn good() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    // Test code may use wall clocks and hash maps freely.
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn t() {
        let _ = (HashMap::<u8, u8>::new(), Instant::now());
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn determinism_out_of_scope_crate_is_silent() {
    let src = "pub fn f() { let _ = std::time::Instant::now(); }\n";
    let mut cfg = Config::workspace_default("/nonexistent");
    cfg.secret_scope_crates.clear();
    let class = FileClass {
        crate_name: "not-in-scope".to_string(),
        kind: FileKind::Lib,
    };
    let mut report = Report::default();
    scan_file(
        &cfg,
        "crates/not-in-scope/src/lib.rs",
        &class,
        src,
        &mut report,
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn determinism_waived_line_is_recorded_not_active() {
    let src = r#"
pub fn knob() -> Option<String> {
    // bp-lint: allow(determinism-env) reason="operator knob, never results"
    std::env::var("FIX_KNOB").ok()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
    assert!(rules_fired(&report, Status::Waived).contains("determinism-env"));
}

#[test]
fn determinism_file_level_waiver_covers_whole_file() {
    let src = r#"
// bp-lint: allow-file(determinism-time) reason="wall-clock diagnostics only"
use std::time::Instant;

pub fn a() -> Instant {
    Instant::now()
}

pub fn b() -> Instant {
    Instant::now()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
    let waived = report
        .findings
        .iter()
        .filter(|f| f.status == Status::Waived && f.rule == "determinism-time")
        .count();
    assert!(waived >= 2, "{:?}", report.findings);
}

// -------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_positive_unwrap_expect_panic() {
    let src = r#"
pub fn bad(x: Option<u32>) -> u32 {
    if x.is_none() {
        panic!("boom");
    }
    let y: Result<u32, ()> = Ok(1);
    x.unwrap() + y.expect("fine")
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let n = report
        .findings
        .iter()
        .filter(|f| f.rule == "panic-freedom" && f.status == Status::Active)
        .count();
    assert_eq!(n, 3, "{:?}", report.findings);
}

#[test]
fn panic_freedom_negative_tests_bins_and_paths() {
    let src = r#"
pub fn good(x: Option<u32>) -> u32 {
    // `Result::unwrap` named in a path position is not a call on a value.
    let f: fn(Result<u32, std::fmt::Error>) -> u32 = Result::unwrap;
    let _ = f;
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u32).unwrap();
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);

    // Binary entry points may panic on bad CLI input.
    let report = lint_src(
        "crates/fix/src/main.rs",
        "fn main() { panic!(\"usage\"); }\n",
    );
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn panic_freedom_waiver_must_target_the_finding_line() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // bp-lint: allow(panic-freedom) reason="invariant: caller checked"
    x.expect("checked")
}

pub fn g(x: Option<u32>) -> u32 {
    x.expect("not waived")
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let active: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.status == Status::Active)
        .collect();
    assert_eq!(active.len(), 1, "{:?}", report.findings);
    assert_eq!(active[0].rule, "panic-freedom");
    assert_eq!(active[0].line, 8);
}

// ------------------------------------------------------------- secret-hygiene

#[test]
fn secret_debug_positive_derive_and_impl() {
    let src = r#"
#[derive(Debug, Clone)]
pub struct KeyManager {
    keys: Vec<u64>,
}

pub struct Other {
    pub round_keys: [u64; 4],
}

impl std::fmt::Display for Other {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "other")
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let n = report
        .findings
        .iter()
        .filter(|f| f.rule == "secret-debug" && f.status == Status::Active)
        .count();
    assert_eq!(n, 2, "{:?}", report.findings);
}

#[test]
fn taint_format_positive_key_in_format_args() {
    let src = r#"
pub fn leak(keys: &[u64]) -> String {
    format!("keys = {:x?}", keys)
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("secret-taint-format"),
        "{:?}",
        report.findings
    );
}

#[test]
fn taint_branch_positive_and_cipher_internal_exempt() {
    let src = r#"
pub fn timing_leak(keys: &[u64]) -> u32 {
    if keys[0] & 1 == 1 {
        1
    } else {
        0
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("secret-taint-branch"),
        "{:?}",
        report.findings
    );

    // The same code inside an audited cipher internal is exempt.
    let report = lint_src("crates/fix/src/cipher_core.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn taint_flows_through_a_let_binding_to_a_branch() {
    // The acceptance fixture for the dataflow upgrade: the v1 lexical
    // rule matched secret *names* at the sink, so laundering key bits
    // through an innocently named local was invisible. The taint pass
    // follows the assignment.
    let src = r#"
pub struct KeysTable {
    content_key: u64,
}

impl KeysTable {
    pub fn content_key(&self, _idx: usize) -> u64 {
        self.content_key
    }
}

pub fn observe(table: &KeysTable) -> u32 {
    let material = table.content_key(0);
    if material & 1 == 1 {
        1
    } else {
        0
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let branch: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "secret-taint-branch" && f.status == Status::Active)
        .collect();
    assert_eq!(branch.len(), 1, "{:?}", report.findings);
    assert!(
        branch[0].message.contains("material"),
        "finding must name the laundered local: {:?}",
        branch[0]
    );
}

#[test]
fn taint_propagates_through_reassignment() {
    let src = r#"
pub fn relabel(keys: &[u64]) -> u32 {
    let mut cursor = 0u64;
    cursor = keys[0];
    let probe = cursor;
    if probe & 1 == 1 {
        1
    } else {
        0
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("secret-taint-branch"),
        "{:?}",
        report.findings
    );
}

#[test]
fn taint_index_positive_and_codec_allowlist_exempt() {
    let src = r#"
pub fn leak_pattern(table: &[u32; 16], keys: &[u64]) -> u32 {
    let idx = (keys[0] & 15) as usize;
    table[idx]
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("secret-taint-index"),
        "{:?}",
        report.findings
    );

    // The same shape inside the codec allowlist is the mechanism under
    // study, not a leak.
    let report = lint_src("crates/fix/src/codec_core.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn taint_store_positive_into_non_secret_field() {
    let src = r#"
pub struct Slot {
    pub tag: u64,
    pub round_keys: [u64; 4],
}

pub fn stash(slot: &mut Slot, keys: &[u64]) {
    slot.tag = keys[0];
}

pub fn rotate(slot: &mut Slot, keys: &[u64]) {
    // Declared key-material fields are where secrets are allowed to rest.
    slot.round_keys = [keys[0]; 4];
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let store: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "secret-taint-store" && f.status == Status::Active)
        .collect();
    assert_eq!(store.len(), 1, "{:?}", report.findings);
    assert!(store[0].message.contains("tag"), "{:?}", store[0]);
}

#[test]
fn taint_waived_line_is_recorded_not_active() {
    let src = r#"
pub fn decide(keys: &[u64]) -> u32 {
    // bp-lint: allow(secret-taint-branch) reason="fixture: audited public decision"
    if keys[0] & 1 == 1 {
        1
    } else {
        0
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
    assert!(rules_fired(&report, Status::Waived).contains("secret-taint-branch"));
}

#[test]
fn stale_v1_waiver_is_reported_and_suppresses_nothing() {
    // Waivers written against the retired lexical rule names must not
    // silently keep suppressing: `secret-branch` no longer exists, so the
    // waiver is flagged as unknown and the taint finding stays active.
    let src = r#"
pub fn decide(keys: &[u64]) -> u32 {
    // bp-lint: allow(secret-branch) reason="written against the v1 rule"
    if keys[0] & 1 == 1 {
        1
    } else {
        0
    }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let fired = active(&report);
    assert!(
        fired.contains("secret-taint-branch"),
        "{:?}",
        report.findings
    );
    let hygiene: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "waiver-hygiene" && f.status == Status::Active)
        .collect();
    assert_eq!(hygiene.len(), 1, "{:?}", report.findings);
    assert!(
        hygiene[0].message.contains("unknown rule `secret-branch`"),
        "{:?}",
        hygiene[0]
    );
}

#[test]
fn secret_negative_shape_reads_and_nonsecret_names() {
    let src = r#"
#[derive(Debug, Clone)]
pub struct Stats {
    pub hits: u64,
}

pub fn ok(keys: &[u64], stats: &Stats) -> String {
    // Branching on a secret container's *shape* is allowed.
    if keys.is_empty() {
        return String::new();
    }
    format!("{} hits over {} keys", stats.hits, keys.len())
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn secret_scope_is_per_crate() {
    let src = "pub fn f(keys: &[u64]) -> String { format!(\"{:?}\", keys) }\n";
    let mut cfg = Config::workspace_default("/nonexistent");
    cfg.determinism_crates.clear();
    let class = FileClass {
        crate_name: "no-secrets-here".to_string(),
        kind: FileKind::Lib,
    };
    let mut report = Report::default();
    scan_file(
        &cfg,
        "crates/no-secrets-here/src/lib.rs",
        &class,
        src,
        &mut report,
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// --------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_audit_positive_missing_safety_comment() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("unsafe-audit"),
        "{:?}",
        report.findings
    );
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(!report.unsafe_inventory[0].has_safety);
}

#[test]
fn unsafe_audit_negative_safety_comment_adjacent() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(report.unsafe_inventory[0].has_safety);
}

// ------------------------------------------------------------- waiver-hygiene

#[test]
fn waiver_without_reason_is_malformed() {
    let src = r#"
pub fn f() -> Option<String> {
    // bp-lint: allow(determinism-env)
    std::env::var("X").ok()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let fired = active(&report);
    // The malformed waiver suppresses nothing, so the original finding
    // stays active alongside the hygiene finding.
    assert!(fired.contains("waiver-hygiene"), "{:?}", report.findings);
    assert!(fired.contains("determinism-env"), "{:?}", report.findings);
}

#[test]
fn waiver_with_empty_reason_is_malformed() {
    let src = r#"
pub fn f() -> Option<String> {
    // bp-lint: allow(determinism-env) reason=""
    std::env::var("X").ok()
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("waiver-hygiene"),
        "{:?}",
        report.findings
    );
}

#[test]
fn waiver_naming_unknown_rule_is_flagged() {
    let src = r#"
pub fn f() -> u32 {
    // bp-lint: allow(no-such-rule) reason="typo"
    0
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(
        active(&report).contains("waiver-hygiene"),
        "{:?}",
        report.findings
    );
}

#[test]
fn unused_waiver_is_flagged() {
    let src = r#"
pub fn f() -> u32 {
    // bp-lint: allow(panic-freedom) reason="nothing here panics anymore"
    0
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    let hygiene: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "waiver-hygiene" && f.status == Status::Active)
        .collect();
    assert_eq!(hygiene.len(), 1, "{:?}", report.findings);
    assert!(hygiene[0].message.contains("suppresses nothing"));
}

// ------------------------------------------------------------ serve-discipline

#[test]
fn serve_hot_lock_fires_only_on_the_hot_path() {
    let src = r#"
pub fn answer(m: &std::sync::Mutex<u64>) -> u64 {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let g = m.lock();
    drop(g);
    0
}
"#;
    let report = lint_src("crates/fix/src/shard.rs", src);
    let hot: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "serve-hot-lock" && f.status == Status::Active)
        .collect();
    assert_eq!(
        hot.len(),
        2,
        "sleep and lock both fire: {:?}",
        report.findings
    );

    // Off the hot path the same code is allowed (supervisors may block).
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

#[test]
fn lock_order_inversion_is_reported_once_with_both_sites() {
    let src = r#"
pub fn forward(locks: &Locks) {
    let a = locks.alpha.lock();
    let b = locks.beta.lock();
    drop((a, b));
}

pub fn backward(locks: &Locks) {
    let b = locks.beta.lock();
    let a = locks.alpha.lock();
    drop((a, b));
}
"#;
    let report = lint_src("crates/fix/src/serve_paths.rs", src);
    let order: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "serve-lock-order")
        .collect();
    assert_eq!(order.len(), 1, "{:?}", report.findings);
    assert!(order[0].message.contains("forward"), "{:?}", order[0]);
    assert!(order[0].message.contains("backward"), "{:?}", order[0]);
    assert!(order[0].message.contains("deadlock"), "{:?}", order[0]);
}

#[test]
fn consistent_lock_order_is_silent() {
    let src = r#"
pub fn first(locks: &Locks) {
    let a = locks.alpha.lock();
    let b = locks.beta.lock();
    drop((a, b));
}

pub fn second(locks: &Locks) {
    let a = locks.alpha.lock();
    let b = locks.beta.lock();
    drop((a, b));
}
"#;
    let report = lint_src("crates/fix/src/serve_paths.rs", src);
    assert!(active(&report).is_empty(), "{:?}", report.findings);
}

// -------------------------------------------------------------- storage-budget

/// `run_lint` reads `budgets.toml` from the workspace root and anchors
/// drift findings in it — the fixture drifts `total_bits` by one.
#[test]
fn storage_budget_drift_is_an_active_finding() {
    let dir = std::env::temp_dir().join(format!("bp-lint-budget-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates").join("fix").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture tree");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub const ENTRIES: usize = 64;\npub const ENTRY_BITS: usize = 47;\n",
    )
    .expect("write source");
    std::fs::write(
        dir.join("budgets.toml"),
        "[loop_pred.default_scl]\n\
         files = [\"crates/fix/src/lib.rs\"]\n\
         component.entries = \"ENTRIES * ENTRY_BITS\"\n\
         total_bits = 3009\n",
    )
    .expect("write budgets");

    let config = Config::workspace_default(&dir);
    let report = run_lint(&config, &Baseline::default()).expect("lint runs");
    assert!(
        report.findings.iter().any(|f| f.rule == "storage-budget"
            && f.file == "budgets.toml"
            && f.message.contains("computed storage is 3008")),
        "{:?}",
        report.findings
    );
    std::fs::remove_dir_all(&dir).ok();
}

// -------------------------------------------------------- lexer-level silence

#[test]
fn strings_comments_and_docs_never_fire() {
    let src = r#"
//! This module never calls `.unwrap()` or `HashMap::new()` — honest!

/// Returns the text "panic!" without panicking. See also `Instant::now`.
pub fn text() -> &'static str {
    "call .unwrap() or .expect(\"x\") or std::env::var(\"HOME\") here"
}
"#;
    let report = lint_src("crates/fix/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn multi_hash_raw_strings_do_not_swallow_scope_markers() {
    // A production raw string that *contains* `#[cfg(test)]` must not
    // open a test scope: the `.unwrap()` after it is still production
    // code and must fire. Guards with two or more `#`s and byte-raw
    // strings exercise the delimiter counting.
    let src = "pub const DOC: &str = r##\"#[cfg(test)] mod tests { fn t() {} }\"##;\n\
               pub const RAW: &[u8] = br#\"also \"quoted\" bytes\"#;\n\
               pub fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap()\n\
               }\n";
    let report = lint_src("crates/fix/src/lib.rs", src);
    let fired = active(&report);
    assert!(fired.contains("panic-freedom"), "{:?}", report.findings);
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.status == Status::Active)
            .count(),
        1,
        "only the unwrap fires: {:?}",
        report.findings
    );
}
