//! The protection mechanisms compared in the paper's evaluation (Table I).

use bp_common::ConfigError;
use bp_crypto::keys::KeysTableConfig;
use std::fmt;

/// Largest accepted `extra_storage_pct` for [`Mechanism::Replication`]
/// (Figure 8 sweeps 0..=300; anything beyond 1000% is a configuration
/// mistake, not an experiment).
pub const MAX_REPLICATION_EXTRA_PCT: u32 = 1000;

/// Which strong cipher fills the randomized index keys table (or sits inline
/// on the critical path for the Figure-2 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CipherKind {
    /// QARMA-64 (the paper's choice, ~8-cycle inline latency).
    #[default]
    Qarma,
    /// PRINCE (~8-cycle inline latency).
    Prince,
    /// The CEASER-style linear cipher (2 cycles, cryptographically broken —
    /// kept for the security ablation).
    Llbc,
    /// Bare XOR with a secret key (1 cycle, trivially linear).
    Xor,
}

impl CipherKind {
    /// Instantiates the cipher from a seed.
    pub fn build(self, seed: u64) -> Box<dyn bp_crypto::TweakableBlockCipher> {
        match self {
            CipherKind::Qarma => Box::new(bp_crypto::Qarma64::from_seed(seed)),
            CipherKind::Prince => Box::new(bp_crypto::Prince::from_seed(seed)),
            CipherKind::Llbc => Box::new(bp_crypto::Llbc::from_seed(seed)),
            CipherKind::Xor => Box::new(bp_crypto::XorCipher::new(seed)),
        }
    }

    /// Modeled inline latency (cycles) if the cipher were on the critical
    /// path instead of behind the code book.
    pub fn inline_latency(self) -> u32 {
        match self {
            CipherKind::Qarma | CipherKind::Prince => 8,
            CipherKind::Llbc => 2,
            CipherKind::Xor => 1,
        }
    }
}

impl fmt::Display for CipherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CipherKind::Qarma => "qarma-64",
            CipherKind::Prince => "prince",
            CipherKind::Llbc => "llbc",
            CipherKind::Xor => "xor",
        };
        f.write_str(s)
    }
}

/// Configuration of the HyBP mechanism itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybpConfig {
    /// Geometry of each per-slot randomized index keys table.
    pub keys_table: KeysTableConfig,
    /// Access-counter threshold forcing a key renewal (paper: ≈ 2²⁷).
    pub renewal_threshold: u64,
    /// The cipher filling the code book.
    pub cipher: CipherKind,
    /// If `true`, model the cipher *inline* on the prediction critical path
    /// instead of using the code book: the BPU then reports the cipher's
    /// latency as extra front-end cycles (the Figure-2 ablation).
    pub inline_cipher: bool,
    /// Optional preset-frequency key change (paper §VI-C: "the system can
    /// also change the keys at a preset frequency regardless of context
    /// switching"), in cycles. `None` relies on context switches plus the
    /// access counter alone.
    pub periodic_refresh: Option<u64>,
    /// Whether the small upper-level structures are physically isolated per
    /// `(thread, privilege)` slot. `false` gives the *randomization-only*
    /// ablation (§V-B's counterfactual): the shared L2/tagged tables keep
    /// their keys but lose the L0/L1 access filtering.
    pub isolate_upper: bool,
}

impl HybpConfig {
    /// The paper's default: 1K-entry 10-bit keys tables, QARMA, 2²⁷
    /// renewal threshold, latency hidden behind the code book.
    pub fn paper_default() -> Self {
        HybpConfig {
            keys_table: KeysTableConfig::paper_default(),
            renewal_threshold: bp_crypto::keys::PAPER_RENEWAL_THRESHOLD,
            cipher: CipherKind::Qarma,
            inline_cipher: false,
            periodic_refresh: None,
            isolate_upper: true,
        }
    }

    /// The randomization-only ablation: no physical isolation of the upper
    /// levels, randomized last-level tables only.
    pub fn randomization_only() -> Self {
        HybpConfig {
            isolate_upper: false,
            ..Self::paper_default()
        }
    }

    /// Same defaults with a different keys-table entry count (Table VI).
    pub fn with_keys_entries(entries: usize) -> Self {
        HybpConfig {
            keys_table: KeysTableConfig::with_entries(entries),
            ..Self::paper_default()
        }
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the keys-table geometry is invalid,
    /// the renewal threshold is zero, or a periodic refresh of zero cycles
    /// is requested.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.keys_table.validate()?;
        if self.renewal_threshold == 0 {
            return Err(ConfigError::zero("renewal_threshold"));
        }
        if self.periodic_refresh == Some(0) {
            return Err(ConfigError::zero("periodic_refresh"));
        }
        Ok(())
    }
}

impl Default for HybpConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A branch predictor protection mechanism (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Unprotected shared predictor.
    Baseline,
    /// Flush all predictor state on context switches and privilege changes.
    Flush,
    /// Statically partition every table per `(thread, privilege)`; each
    /// partition is also flushed when its thread is switched out.
    Partition,
    /// Scale total predictor storage by `(100 + extra_storage_pct) / 100`,
    /// then divide among `(thread, privilege)` slots. The paper's
    /// "Replication" row is `extra_storage_pct = 100`; Figure 8 sweeps
    /// 0..=300.
    Replication {
        /// Extra storage beyond the baseline, in percent (0..=300).
        extra_storage_pct: u32,
    },
    /// Run only one hardware thread (the pipeline enforces this); the BPU
    /// behaves like the baseline.
    DisableSmt,
    /// The hybrid isolation-randomization mechanism.
    HyBp(HybpConfig),
    /// Unprotected baseline with a decades-old tournament predictor instead
    /// of TAGE-SC-L — the paper's §VII-F yardstick for how much performance
    /// modern prediction is worth (≈ 5.4%).
    TournamentBaseline,
}

impl Mechanism {
    /// HyBP with the paper's default parameters.
    pub fn hybp_default() -> Self {
        Mechanism::HyBp(HybpConfig::paper_default())
    }

    /// The paper's "Replication" row (100% extra storage).
    pub fn replication_default() -> Self {
        Mechanism::Replication {
            extra_storage_pct: 100,
        }
    }

    /// Short name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::Baseline => "Baseline",
            Mechanism::Flush => "Flush",
            Mechanism::Partition => "Partition",
            Mechanism::Replication { .. } => "Replication",
            Mechanism::DisableSmt => "DisableSMT",
            Mechanism::HyBp(_) => "HyBP",
            Mechanism::TournamentBaseline => "Tournament",
        }
    }

    /// Whether predictor structures are replicated/partitioned per
    /// `(thread, privilege)` slot rather than shared.
    pub fn is_per_slot(&self) -> bool {
        matches!(self, Mechanism::Partition | Mechanism::Replication { .. })
    }

    /// Checks the mechanism's parameters for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a Replication storage factor exceeds
    /// [`MAX_REPLICATION_EXTRA_PCT`] or an embedded [`HybpConfig`] is
    /// invalid.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            Mechanism::Replication { extra_storage_pct } => {
                if *extra_storage_pct > MAX_REPLICATION_EXTRA_PCT {
                    return Err(ConfigError::too_large(
                        "extra_storage_pct",
                        u64::from(*extra_storage_pct),
                        u64::from(MAX_REPLICATION_EXTRA_PCT),
                    ));
                }
                Ok(())
            }
            Mechanism::HyBp(cfg) => cfg.validate(),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mechanism::Replication { extra_storage_pct } => {
                write!(f, "Replication(+{extra_storage_pct}%)")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cipher_latencies_match_paper() {
        assert_eq!(CipherKind::Qarma.inline_latency(), 8);
        assert_eq!(CipherKind::Prince.inline_latency(), 8);
        assert_eq!(CipherKind::Llbc.inline_latency(), 2);
    }

    #[test]
    fn cipher_build_roundtrip() {
        for kind in [
            CipherKind::Qarma,
            CipherKind::Prince,
            CipherKind::Llbc,
            CipherKind::Xor,
        ] {
            let c = kind.build(99);
            assert_eq!(c.decrypt(c.encrypt(123, 7), 7), 123, "{kind}");
        }
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(Mechanism::Baseline.name(), "Baseline");
        assert_eq!(Mechanism::hybp_default().name(), "HyBP");
        assert_eq!(
            Mechanism::Replication {
                extra_storage_pct: 240
            }
            .to_string(),
            "Replication(+240%)"
        );
    }

    #[test]
    fn per_slot_classification() {
        assert!(Mechanism::Partition.is_per_slot());
        assert!(Mechanism::replication_default().is_per_slot());
        assert!(!Mechanism::Baseline.is_per_slot());
        assert!(!Mechanism::hybp_default().is_per_slot());
    }

    #[test]
    fn validate_accepts_all_paper_mechanisms() {
        for mech in [
            Mechanism::Baseline,
            Mechanism::Flush,
            Mechanism::Partition,
            Mechanism::replication_default(),
            Mechanism::DisableSmt,
            Mechanism::hybp_default(),
            Mechanism::TournamentBaseline,
        ] {
            assert_eq!(mech.validate(), Ok(()), "{mech}");
        }
    }

    #[test]
    fn validate_rejects_absurd_replication() {
        let m = Mechanism::Replication {
            extra_storage_pct: MAX_REPLICATION_EXTRA_PCT + 1,
        };
        assert!(m.validate().is_err());
        let ok = Mechanism::Replication {
            extra_storage_pct: MAX_REPLICATION_EXTRA_PCT,
        };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_hybp_configs() {
        let mut zero_threshold = HybpConfig::paper_default();
        zero_threshold.renewal_threshold = 0;
        assert!(Mechanism::HyBp(zero_threshold).validate().is_err());

        let mut zero_period = HybpConfig::paper_default();
        zero_period.periodic_refresh = Some(0);
        assert!(Mechanism::HyBp(zero_period).validate().is_err());

        let mut bad_geometry = HybpConfig::paper_default();
        bad_geometry.keys_table.entries = 0;
        assert!(Mechanism::HyBp(bad_geometry).validate().is_err());
    }

    #[test]
    fn default_config_matches_paper() {
        let c = HybpConfig::paper_default();
        assert_eq!(c.keys_table.entries, 1024);
        assert_eq!(c.renewal_threshold, 1 << 27);
        assert_eq!(c.cipher, CipherKind::Qarma);
        assert!(!c.inline_cipher);
        assert_eq!(c.periodic_refresh, None);
        assert!(c.isolate_upper);
        assert!(!HybpConfig::randomization_only().isolate_upper);
    }
}
