//! Hardware cost model (paper §VII-D, Table I, Figure 8).
//!
//! Reproduces the paper's accounting: for an SMT-2 core, HyBP costs
//!
//! 1. three extra replicas of the physically isolated structures (L0+L1 BTB
//!    and the base direction predictor) ≈ 16.3 KB,
//! 2. four randomized index keys tables at 1.25 KB each = 5 KB,
//! 3. one QARMA-64 engine, 1238.1 µm² in 7 nm ≈ 1.4 KB of SRAM-equivalent
//!    area,
//!
//! ≈ 22.7 KB total, ≈ 21.1% of the baseline branch predictor.

use bp_crypto::keys::KeysTableConfig;
use bp_predictors::btb::BtbHierarchyConfig;
use bp_predictors::tage::TageConfig;

use crate::mechanism::Mechanism;

/// SRAM-equivalent cost of the QARMA-64 engine (paper: 1238.1 µm² ≈ 1.4 KB).
pub const QARMA_ENGINE_BYTES: u64 = 1434; // 1.4 KB

/// Storage cost breakdown for one mechanism on an SMT core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Baseline branch predictor storage (BTB hierarchy + TAGE-SC-L), bytes.
    pub baseline_bytes: u64,
    /// Extra replicas of the isolated structures (paper accounting:
    /// L0 + L1 + base predictor), bytes.
    pub replication_bytes: u64,
    /// Randomized index keys tables, bytes.
    pub keys_tables_bytes: u64,
    /// Cipher engine SRAM-equivalent, bytes.
    pub cipher_bytes: u64,
    /// Additional table storage beyond baseline for scaled mechanisms
    /// (Replication's extra percent), bytes.
    pub scaled_tables_bytes: u64,
}

impl CostBreakdown {
    /// Total extra storage over the baseline, bytes.
    pub fn overhead_bytes(&self) -> u64 {
        self.replication_bytes
            + self.keys_tables_bytes
            + self.cipher_bytes
            + self.scaled_tables_bytes
    }

    /// Overhead as a fraction of the baseline predictor.
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_bytes() as f64 / self.baseline_bytes as f64
    }
}

/// Baseline BPU storage in bytes: Zen2-style BTB + paper-scale TAGE-SC-L
/// (including SC and loop structures).
pub fn baseline_bpu_bytes() -> u64 {
    let btb = BtbHierarchyConfig::zen2().storage_bits();
    let tage = TageConfig::paper_scl().storage_bits();
    let sc = bp_predictors::sc::ScConfig::default_scl().storage_bits();
    let lp = bp_predictors::loop_pred::LoopPredictor::default_scl().storage_bits();
    (btb + tage + sc + lp).div_ceil(8)
}

/// Storage of the structures HyBP replicates per isolation slot, in bytes
/// (paper accounting: L0 + L1 BTB and the base direction predictor).
pub fn isolated_share_bytes() -> u64 {
    let zen2 = BtbHierarchyConfig::zen2();
    let upper = zen2.l0.storage_bits() + zen2.l1.storage_bits();
    let base = TageConfig::paper_scl().base_storage_bits();
    (upper + base).div_ceil(8)
}

/// Computes the cost breakdown for `mechanism` on an SMT core with
/// `n_hw_threads` hardware threads.
pub fn mechanism_cost(mechanism: &Mechanism, n_hw_threads: usize) -> CostBreakdown {
    let baseline = baseline_bpu_bytes();
    let slots = (n_hw_threads * 2) as u64;
    match mechanism {
        Mechanism::Baseline
        | Mechanism::Flush
        | Mechanism::Partition
        | Mechanism::DisableSmt
        | Mechanism::TournamentBaseline => CostBreakdown {
            baseline_bytes: baseline,
            replication_bytes: 0,
            keys_tables_bytes: 0,
            cipher_bytes: 0,
            scaled_tables_bytes: 0,
        },
        Mechanism::Replication { extra_storage_pct } => CostBreakdown {
            baseline_bytes: baseline,
            replication_bytes: 0,
            keys_tables_bytes: 0,
            cipher_bytes: 0,
            scaled_tables_bytes: baseline * u64::from(*extra_storage_pct) / 100,
        },
        Mechanism::HyBp(cfg) => CostBreakdown {
            baseline_bytes: baseline,
            replication_bytes: isolated_share_bytes() * (slots - 1),
            keys_tables_bytes: keys_table_bytes(&cfg.keys_table) * slots,
            cipher_bytes: QARMA_ENGINE_BYTES,
            scaled_tables_bytes: 0,
        },
    }
}

/// Storage of one keys table in bytes.
pub fn keys_table_bytes(cfg: &KeysTableConfig) -> u64 {
    cfg.storage_bytes() as u64
}

/// The BRB comparison (paper §VII-F): one BRB checkpoint is ≈ 6.6 KB
/// (BTB 2.6 KB + bimodal 1 KB + TAGE 3 KB); the recommended deployment is
/// three checkpoints per hardware thread.
pub fn brb_storage_bytes(n_hw_threads: usize, checkpoints_per_thread: usize) -> u64 {
    const CHECKPOINT_BYTES: u64 = 6758; // 6.6 KB
    CHECKPOINT_BYTES * n_hw_threads as u64 * checkpoints_per_thread as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::HybpConfig;

    #[test]
    fn hybp_cost_matches_paper_magnitudes() {
        let c = mechanism_cost(&Mechanism::hybp_default(), 2);
        let repl_kb = c.replication_bytes as f64 / 1024.0;
        let keys_kb = c.keys_tables_bytes as f64 / 1024.0;
        let total_kb = c.overhead_bytes() as f64 / 1024.0;
        // Paper: 16.3 KB replication, 5 KB keys tables, 1.4 KB QARMA,
        // 22.7 KB total. Allow modeling slack.
        assert!((14.0..19.0).contains(&repl_kb), "replication {repl_kb} KB");
        assert!((4.9..5.1).contains(&keys_kb), "keys tables {keys_kb} KB");
        assert!((20.0..26.0).contains(&total_kb), "total {total_kb} KB");
        // Paper: ≈ 21.1% of the branch predictor.
        let pct = c.overhead_fraction() * 100.0;
        assert!((17.0..26.0).contains(&pct), "overhead {pct}%");
    }

    #[test]
    fn partition_and_flush_are_free() {
        for m in [Mechanism::Flush, Mechanism::Partition, Mechanism::Baseline] {
            assert_eq!(mechanism_cost(&m, 2).overhead_bytes(), 0, "{m}");
        }
    }

    #[test]
    fn replication_overhead_is_linear() {
        let r100 = mechanism_cost(
            &Mechanism::Replication {
                extra_storage_pct: 100,
            },
            2,
        );
        let r200 = mechanism_cost(
            &Mechanism::Replication {
                extra_storage_pct: 200,
            },
            2,
        );
        assert!((r100.overhead_fraction() - 1.0).abs() < 0.01);
        assert!((r200.overhead_fraction() - 2.0).abs() < 0.01);
    }

    #[test]
    fn replication_at_240_costs_more_than_10x_hybp() {
        // The paper's Figure-8 punchline: matching HyBP's performance with
        // Replication needs ≈ 240% storage vs HyBP's ≈ 21%.
        let hybp = mechanism_cost(&Mechanism::hybp_default(), 2);
        let repl = mechanism_cost(
            &Mechanism::Replication {
                extra_storage_pct: 240,
            },
            2,
        );
        assert!(repl.overhead_bytes() > 10 * hybp.overhead_bytes());
    }

    #[test]
    fn brb_is_more_than_twice_hybp() {
        // Paper §VII-F: with three checkpoints per thread, BRB storage is
        // more than twice HyBP's overhead.
        let hybp = mechanism_cost(&Mechanism::hybp_default(), 2).overhead_bytes();
        let brb = brb_storage_bytes(2, 3);
        assert!(brb > 3 * hybp / 2, "brb {brb} vs hybp {hybp}");
    }

    #[test]
    fn bigger_keys_tables_cost_more() {
        let small = mechanism_cost(&Mechanism::HyBp(HybpConfig::with_keys_entries(1024)), 2);
        let big = mechanism_cost(
            &Mechanism::HyBp(HybpConfig::with_keys_entries(32 * 1024)),
            2,
        );
        assert!(big.keys_tables_bytes > 20 * small.keys_tables_bytes);
    }

    #[test]
    fn baseline_is_about_100kb_class() {
        let kb = baseline_bpu_bytes() as f64 / 1024.0;
        assert!((90.0..130.0).contains(&kb), "baseline {kb} KB");
    }
}
