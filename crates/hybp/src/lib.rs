//! # HyBP: Hybrid Isolation-Randomization Secure Branch Predictor
//!
//! This crate is the paper's contribution (Zhao et al., HPCA 2022): a branch
//! prediction unit that protects the *small, upper-level* structures (L0/L1
//! BTB, TAGE base predictor, per-thread histories) with **physical
//! isolation** per `(hardware thread, privilege)` and the *large, last-level*
//! structures (L2 BTB, TAGE tagged tables) with **randomization** — index
//! encryption through a QARMA-filled keys table plus content XOR encryption —
//! with keys changed at context switches and at an access-count threshold.
//!
//! The same [`SecureBpu`] type also implements every comparison mechanism of
//! the paper's evaluation ([`Mechanism`]): the unprotected baseline, Flush,
//! Partition, Replication (with a storage scale knob for the Figure-8
//! sweep), and Disable-SMT.
//!
//! # Examples
//!
//! ```
//! use hybp::{Mechanism, SecureBpu};
//! use bp_common::{Addr, Asid, BranchRecord, HwThreadId};
//!
//! # fn main() -> Result<(), bp_common::ConfigError> {
//! let mut bpu = SecureBpu::new(Mechanism::hybp_default(), 2, 42)?;
//! let hw = HwThreadId::new(0);
//! bpu.on_context_switch(hw, Asid::new(7), 0);
//! let branch = BranchRecord::conditional(Addr::new(0x1000), Addr::new(0x2000), true, 5);
//! let outcome = bpu.process_branch(hw, &branch, 100);
//! assert!(outcome.btb_latency <= 4);
//! # Ok(())
//! # }
//! ```

mod bpu;
mod codec;
pub mod cost;
mod mechanism;

pub use bpu::{BpuStats, BranchOutcome, KeyEpoch, SecureBpu};
pub use codec::HybpCodec;
pub use mechanism::{CipherKind, HybpConfig, Mechanism};
