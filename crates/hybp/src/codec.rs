//! The randomizing [`TableCodec`]: HyBP's index and content encryption.
//!
//! Only the *large shared* tables are randomized — the L2 BTB and the TAGE
//! tagged tables. The physically isolated structures (L0/L1 BTB, TAGE base,
//! SC, loop predictor) pass through unchanged: their protection is the
//! per-slot replication, not encryption.
//!
//! Index transformation follows the paper's Figure 3/4 datapath: a slice of
//! the branch PC indexes the per-`(thread, privilege)` randomized keys table
//! (the QARMA-filled "code book"); the retrieved key is XOR-combined with
//! the plaintext index. Content (and the partial tag, which is stored
//! content) is XOR-encrypted with the per-slot content key. Every keys-table
//! access is counted, and crossing the renewal threshold re-keys the slot
//! automatically (§V-D).

use bp_common::{Addr, Asid, ConfigError, Cycle, Vmid};
use bp_crypto::keys::{KeyManager, KeysTableConfig};
use bp_faults::FaultInjector;
use bp_predictors::codec::{TableCodec, TableId, TableUnit};

use crate::mechanism::HybpConfig;

/// Statistics the codec gathers while interposing accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Randomized-table accesses (= keys-table reads).
    pub randomized_accesses: u64,
    /// Key renewals triggered by the access counter (not context switches).
    pub counter_renewals: u64,
}

/// HyBP's table codec. One instance serves the whole BPU; the owner sets the
/// active security context (slot, ASID) before each branch.
// No `Debug`: contains the [`KeyManager`] and with it every slot's key
// state (secret-hygiene, bp-lint secret-debug).
pub struct HybpCodec {
    key_manager: KeyManager,
    keys_index_bits: u32,
    slot: usize,
    asid: Asid,
    vmid: Vmid,
    stats: CodecStats,
}

impl HybpCodec {
    /// Creates the codec with `slot_count` isolation slots.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the embedded keys-table geometry,
    /// renewal threshold or slot count is invalid.
    pub fn new(config: &HybpConfig, slot_count: usize, seed: u64) -> Result<Self, ConfigError> {
        config.validate()?;
        let keys_index_bits = keys_index_bits(&config.keys_table);
        Ok(HybpCodec {
            key_manager: KeyManager::new(
                config.cipher.build(seed),
                slot_count,
                config.keys_table,
                config.renewal_threshold,
                seed ^ 0x5EED_0001,
            )?,
            keys_index_bits,
            slot: 0,
            asid: Asid::new(0),
            vmid: Vmid::new(0),
            stats: CodecStats::default(),
        })
    }

    /// Attaches (or detaches) a fault injector disturbing the keys table.
    pub fn set_fault_injector(&mut self, faults: Option<FaultInjector>) {
        self.key_manager.set_fault_injector(faults);
    }

    /// Installs the telemetry sink key renewals report refresh spans to.
    pub fn set_telemetry(&mut self, telemetry: bp_common::Telemetry) {
        self.key_manager.set_telemetry(telemetry);
    }

    /// Whether `slot`'s keys-table rewrite is still in flight at `now`.
    ///
    /// Predictions keep flowing during this window (stale keys are served,
    /// §V-C2) — the BPU counts them to make the off-critical-path claim
    /// checkable.
    pub fn refresh_in_flight(&self, slot: usize, now: Cycle) -> bool {
        self.key_manager.slot(slot).table().refresh_in_flight(now)
    }

    /// Sets the security context for subsequent accesses.
    pub fn set_context(&mut self, slot: usize, asid: Asid, vmid: Vmid) {
        self.slot = slot;
        self.asid = asid;
        self.vmid = vmid;
    }

    /// Renews all keys of `slot` (context-switch path). Returns the cycle at
    /// which the keys-table rewrite completes.
    pub fn renew_slot(&mut self, slot: usize, asid: Asid, now: Cycle) -> Cycle {
        self.key_manager.renew(slot, asid, self.vmid, now)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CodecStats {
        self.stats
    }

    /// The underlying key manager (analysis/attack harness access).
    pub fn key_manager(&self) -> &KeyManager {
        &self.key_manager
    }

    fn is_randomized(table: TableId) -> bool {
        matches!(
            (table.unit, table.level),
            (TableUnit::Btb, 2) | (TableUnit::TageTagged, _)
        )
    }

    fn index_key(&mut self, pc: Addr, now: Cycle) -> u64 {
        self.stats.randomized_accesses += 1;
        // Key selection uses PC bits *above* the set-index range so that the
        // XOR of key and raw index stays balanced across sets (keying by the
        // set bits themselves would turn the bijective per-key XOR into a
        // random function and add conflict misses).
        let pc_slice = pc.bits(12, self.keys_index_bits);
        let (key, renewed) = self
            .key_manager
            .index_key(self.slot, pc_slice, self.asid, self.vmid, now);
        // bp-lint: allow(secret-taint-branch) reason="`renewed` is the key manager's public renewal event flag (already observable as a timing event), not key bit values"
        if renewed {
            self.stats.counter_renewals += 1;
        }
        key
    }

    fn content_key(&self) -> u64 {
        self.key_manager.content_key(self.slot)
    }
}

fn keys_index_bits(cfg: &KeysTableConfig) -> u32 {
    (usize::BITS - (cfg.entries - 1).leading_zeros()).max(1)
}

/// Cheap deterministic diffusion for deriving the tag key from the index key
/// and content key (the stored tag is content, so its key material comes
/// from both).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

impl TableCodec for HybpCodec {
    fn transform_index(&mut self, table: TableId, raw_index: u64, pc: Addr, now: Cycle) -> u64 {
        if Self::is_randomized(table) {
            raw_index ^ self.index_key(pc, now)
        } else {
            raw_index
        }
    }

    fn transform_tag(&mut self, table: TableId, raw_tag: u64, pc: Addr, now: Cycle) -> u64 {
        if Self::is_randomized(table) {
            // The tag key mixes the per-PC index key with the content key so
            // a tag never survives either key changing.
            let k = self.index_key(pc, now);
            raw_tag ^ mix(k ^ self.content_key() ^ (table.level as u64) << 56)
        } else {
            raw_tag
        }
    }

    fn encode_content(&mut self, table: TableId, raw: u64) -> u64 {
        if Self::is_randomized(table) {
            raw ^ self.content_key()
        } else {
            raw
        }
    }

    fn decode_content(&mut self, table: TableId, stored: u64) -> u64 {
        if Self::is_randomized(table) {
            stored ^ self.content_key()
        } else {
            stored
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> HybpCodec {
        let mut c = HybpCodec::new(&HybpConfig::paper_default(), 4, 7).expect("valid config");
        for slot in 0..4 {
            c.renew_slot(slot, Asid::new(slot as u16 + 1), 0);
        }
        c
    }

    fn l2() -> TableId {
        TableId::new(TableUnit::Btb, 2)
    }

    fn l0() -> TableId {
        TableId::new(TableUnit::Btb, 0)
    }

    #[test]
    fn isolated_tables_pass_through() {
        let mut c = codec();
        c.set_context(0, Asid::new(1), Vmid::new(0));
        assert_eq!(c.transform_index(l0(), 42, Addr::new(0x100), 5000), 42);
        assert_eq!(c.encode_content(l0(), 9), 9);
        assert_eq!(
            c.transform_index(TableId::new(TableUnit::TageBase, 0), 7, Addr::new(0), 5000),
            7
        );
    }

    #[test]
    fn randomized_index_is_stable_within_generation() {
        let mut c = codec();
        c.set_context(1, Asid::new(2), Vmid::new(0));
        let a = c.transform_index(l2(), 100, Addr::new(0x4000), 5000);
        let b = c.transform_index(l2(), 100, Addr::new(0x4000), 6000);
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_index_changes_after_renewal() {
        let mut c = codec();
        c.set_context(1, Asid::new(2), Vmid::new(0));
        // Collect transformed indices over several PCs (single indices can
        // collide; the full vector cannot, w.h.p.).
        let before: Vec<u64> = (0..32u64)
            .map(|i| c.transform_index(l2(), 100, Addr::new(0x4000 + i * 64), 5000))
            .collect();
        c.renew_slot(1, Asid::new(2), 10_000);
        let after: Vec<u64> = (0..32u64)
            .map(|i| c.transform_index(l2(), 100, Addr::new(0x4000 + i * 64), 20_000))
            .collect();
        assert_ne!(before, after);
    }

    #[test]
    fn different_slots_use_different_keys() {
        let mut c = codec();
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let s0: Vec<u64> = (0..32u64)
            .map(|i| c.transform_index(l2(), 0, Addr::new(0x8000 + i * 32), 5000))
            .collect();
        c.set_context(2, Asid::new(3), Vmid::new(0));
        let s2: Vec<u64> = (0..32u64)
            .map(|i| c.transform_index(l2(), 0, Addr::new(0x8000 + i * 32), 5000))
            .collect();
        assert_ne!(s0, s2, "slots must be keyed independently");
    }

    #[test]
    fn content_roundtrips_under_same_key() {
        let mut c = codec();
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let enc = c.encode_content(l2(), 0xDEAD_BEEF);
        assert_eq!(c.decode_content(l2(), enc), 0xDEAD_BEEF);
        assert_ne!(enc, 0xDEAD_BEEF, "content key must be non-trivial");
    }

    #[test]
    fn content_garbles_across_renewal() {
        let mut c = codec();
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let enc = c.encode_content(l2(), 0xDEAD_BEEF);
        c.renew_slot(0, Asid::new(1), 50_000);
        assert_ne!(
            c.decode_content(l2(), enc),
            0xDEAD_BEEF,
            "old content must not decode under the new key"
        );
    }

    #[test]
    fn content_garbles_across_slots() {
        let mut c = codec();
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let enc = c.encode_content(l2(), 0xDEAD_BEEF);
        c.set_context(1, Asid::new(2), Vmid::new(0));
        assert_ne!(c.decode_content(l2(), enc), 0xDEAD_BEEF);
    }

    #[test]
    fn tag_transform_depends_on_pc_and_keys() {
        let mut c = codec();
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let t1 = c.transform_tag(l2(), 0x55, Addr::new(0x1000), 5000);
        let t2 = c.transform_tag(l2(), 0x55, Addr::new(0x1000), 6000);
        assert_eq!(t1, t2, "stable within a generation");
        c.renew_slot(0, Asid::new(1), 10_000);
        let t3 = c.transform_tag(l2(), 0x55, Addr::new(0x1000), 20_000);
        // 64-bit tag keys: accidental equality is negligible.
        assert_ne!(t1, t3, "tag key must change across renewal");
    }

    #[test]
    fn accesses_are_counted() {
        let mut c = codec();
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let before = c.stats().randomized_accesses;
        let _ = c.transform_index(l2(), 0, Addr::new(0), 5000);
        let _ = c.transform_index(l0(), 0, Addr::new(0), 5000); // not counted
        assert_eq!(c.stats().randomized_accesses, before + 1);
    }

    #[test]
    fn counter_threshold_triggers_renewal() {
        let mut cfg = HybpConfig::paper_default();
        cfg.renewal_threshold = 8;
        let mut c = HybpCodec::new(&cfg, 1, 3).expect("valid config");
        c.renew_slot(0, Asid::new(1), 0);
        c.set_context(0, Asid::new(1), Vmid::new(0));
        for i in 0..40u64 {
            let _ = c.transform_index(l2(), i, Addr::new(0x100 + i * 4), 1000 + i);
        }
        assert!(c.stats().counter_renewals >= 3, "renewals: {:?}", c.stats());
    }
}
