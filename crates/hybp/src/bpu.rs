//! The assembled secure branch prediction unit.
//!
//! [`SecureBpu`] wires the three-level BTB, the TAGE-SC-L direction
//! predictor and per-thread return address stacks together under one of the
//! paper's protection [`Mechanism`]s, and exposes the trace-driven interface
//! the pipeline model consumes: [`SecureBpu::process_branch`] predicts,
//! compares against the trace outcome, trains, and reports what the
//! front-end would have to pay.

use bp_common::telemetry::{Observable, TelemetrySnapshot};
use bp_common::{
    Asid, BranchKind, BranchRecord, ConfigError, Cycle, HwThreadId, Privilege, SecurityDomain,
    Telemetry, Vmid,
};
use bp_faults::FaultInjector;
use bp_predictors::btb::{BtbHierarchy, BtbHierarchyConfig};
use bp_predictors::codec::IdentityCodec;
use bp_predictors::ras::ReturnAddressStack;
use bp_predictors::tage::TageConfig;
use bp_predictors::tage_scl::TageScL;
use bp_predictors::tournament::Tournament;

use crate::codec::HybpCodec;
use crate::mechanism::Mechanism;

/// What one branch cost the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// The direction predictor was wrong (conditional branches only).
    pub direction_mispredict: bool,
    /// The branch was taken but fetch had no (correct) target: BTB miss,
    /// garbled entry, or RAS mismatch.
    pub target_mispredict: bool,
    /// BTB level that hit, if any.
    pub btb_level: Option<u8>,
    /// Fetch-bubble cycles charged for a correct-but-slow target (hits in
    /// L1/L2 cost 1/4 cycles even when correct).
    pub btb_latency: u32,
}

impl BranchOutcome {
    /// Whether the branch redirects the pipeline (full penalty).
    pub fn mispredicted(&self) -> bool {
        self.direction_mispredict || self.target_mispredict
    }
}

/// Counters the BPU gathers across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpuStats {
    /// Total branches processed.
    pub branches: u64,
    /// Conditional branches processed.
    pub conditional_branches: u64,
    /// Direction mispredictions.
    pub direction_mispredicts: u64,
    /// Target mispredictions (taken branches without a usable target).
    pub target_mispredicts: u64,
    /// BTB hits per level.
    pub btb_hits: [u64; 3],
    /// BTB full misses (on taken non-return branches).
    pub btb_misses: u64,
    /// Context switches observed.
    pub context_switches: u64,
    /// Privilege changes observed.
    pub privilege_changes: u64,
    /// Full-predictor flushes performed (Flush mechanism).
    pub full_flushes: u64,
    /// Branches predicted while the active slot's keys-table rewrite was
    /// still in flight (HyBP only). Non-zero proves predictions kept
    /// flowing *during* refresh windows — the machine-checkable half of the
    /// paper's off-critical-path refresh claim (§V-C2): stale keys are
    /// served, the front-end never waits on the keys table.
    pub predictions_during_refresh: u64,
}

impl BpuStats {
    /// Direction prediction accuracy over conditional branches.
    pub fn direction_accuracy(&self) -> f64 {
        if self.conditional_branches == 0 {
            return 1.0;
        }
        1.0 - self.direction_mispredicts as f64 / self.conditional_branches as f64
    }

    /// Mispredictions (direction + target) per processed branch.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        (self.direction_mispredicts + self.target_mispredicts) as f64 / self.branches as f64
    }
}

impl Observable for BpuStats {
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::new("bpu")
            .with("branches", self.branches)
            .with("conditional_branches", self.conditional_branches)
            .with("direction_mispredicts", self.direction_mispredicts)
            .with("target_mispredicts", self.target_mispredicts)
            .with("btb_l0_hits", self.btb_hits[0])
            .with("btb_l1_hits", self.btb_hits[1])
            .with("btb_l2_hits", self.btb_hits[2])
            .with("btb_misses", self.btb_misses)
            .with("context_switches", self.context_switches)
            .with("privilege_changes", self.privilege_changes)
            .with("full_flushes", self.full_flushes)
            .with(
                "predictions_during_refresh",
                self.predictions_during_refresh,
            )
    }
}

/// Everything the BPU reports at end of run, in one shape: the core
/// counters, the codec's counters when the mechanism randomizes, and the
/// per-slot BTB occupancy. This replaces the former accessor triplet
/// (`stats()` / `codec_stats()` / `btb_occupancy()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpuObservation {
    /// Core counters.
    pub stats: BpuStats,
    /// Codec counters, when the mechanism is HyBP.
    pub codec: Option<crate::codec::CodecStats>,
    /// BTB occupancy `(l0, l1, l2)` per isolation slot.
    pub btb_occupancy: Vec<(usize, usize, usize)>,
}

/// A point-in-time view of one isolation slot's key state — the shape a
/// serving layer polls to detect and exit stale-key degraded mode. Carries
/// no key material, only epoch bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyEpoch {
    /// The slot's keys-table generation (bumped when a rewrite completes).
    pub generation: u64,
    /// Whether a background keys-table rewrite is currently in flight.
    pub refresh_in_flight: bool,
    /// Reads served from a not-yet-rewritten entry mid-refresh (§V-C2).
    pub stale_hits: u64,
    /// Renewals whose rewrite was dropped by a fault, BPU-wide — keys kept
    /// serving stale. Monotone; a move without a generation advance is the
    /// degraded-mode entry signal.
    pub refresh_stalls: u64,
}

/// Direction predictor layout per mechanism.
#[derive(Debug)]
enum DirState {
    /// One shared predictor, slot ignored (Baseline, Flush, Disable-SMT).
    Shared(Box<TageScL>),
    /// One predictor with per-slot isolated small structures and shared
    /// tagged tables (HyBP).
    Slotted(Box<TageScL>),
    /// Fully separate predictors per slot (Partition, Replication).
    PerSlot(Vec<TageScL>),
    /// Shared tournament predictor (the §VII-F comparison baseline).
    Tournament(Box<Tournament>),
}

/// Codec layout per mechanism.
// No `Debug`: the HyBP variant owns the key manager (secret-hygiene).
enum CodecState {
    Identity(IdentityCodec),
    Hybp(Box<HybpCodec>),
}

/// The secure branch prediction unit.
// No `Debug`: owns the codec and with it the key material
// (secret-hygiene, bp-lint secret-debug).
pub struct SecureBpu {
    mechanism: Mechanism,
    n_hw_threads: usize,
    dir: DirState,
    btb: BtbHierarchy,
    ras: Vec<ReturnAddressStack>,
    codec: CodecState,
    domains: Vec<SecurityDomain>,
    stats: BpuStats,
    /// Preset-frequency refresh state: (period, next_due_cycle).
    periodic_refresh: Option<(Cycle, Cycle)>,
    /// Optional disturbance source for BTB payload and direction-counter
    /// read faults (the keys-table faults live inside the codec).
    faults: Option<FaultInjector>,
}

impl SecureBpu {
    /// Builds a BPU for `n_hw_threads` SMT threads under `mechanism`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `n_hw_threads` is zero or the
    /// mechanism's parameters fail [`Mechanism::validate`].
    pub fn new(mechanism: Mechanism, n_hw_threads: usize, seed: u64) -> Result<Self, ConfigError> {
        if n_hw_threads == 0 {
            return Err(ConfigError::zero("n_hw_threads"));
        }
        mechanism.validate()?;
        let slots = SecurityDomain::slot_count(n_hw_threads);
        let tage_cfg = TageConfig::paper_scl();
        let zen2 = BtbHierarchyConfig::zen2();

        let (dir, btb, codec) = match mechanism {
            Mechanism::TournamentBaseline => (
                DirState::Tournament(Box::new(Tournament::alpha_like())),
                BtbHierarchy::with_config(zen2, seed),
                CodecState::Identity(IdentityCodec::new()),
            ),
            Mechanism::Baseline | Mechanism::Flush | Mechanism::DisableSmt => (
                // Shared tables, but per-hardware-thread history registers
                // and base/SC/loop banks — as real SMT baselines have (only
                // the large structures are truly shared state).
                DirState::Shared(Box::new(TageScL::with_layout(tage_cfg, 1, n_hw_threads))),
                BtbHierarchy::with_config(zen2, seed),
                CodecState::Identity(IdentityCodec::new()),
            ),
            Mechanism::Partition => {
                let scaled = tage_cfg.scaled(1, slots);
                let cfg = BtbHierarchyConfig {
                    l0: zen2.l0.scaled(1, slots),
                    l1: zen2.l1.scaled(1, slots),
                    l2: zen2.l2.scaled(1, slots),
                    slots,
                    l2_shared: false,
                    ..zen2
                };
                (
                    DirState::PerSlot((0..slots).map(|_| TageScL::new(scaled.clone())).collect()),
                    BtbHierarchy::with_config(cfg, seed),
                    CodecState::Identity(IdentityCodec::new()),
                )
            }
            Mechanism::Replication { extra_storage_pct } => {
                // Total storage is (100 + extra)%, split across slots.
                let numer = 100 + extra_storage_pct as usize;
                let denom = 100 * slots;
                let scaled = tage_cfg.scaled(numer, denom);
                let cfg = BtbHierarchyConfig {
                    l0: zen2.l0.scaled(numer, denom),
                    l1: zen2.l1.scaled(numer, denom),
                    l2: zen2.l2.scaled(numer, denom),
                    slots,
                    l2_shared: false,
                    ..zen2
                };
                (
                    DirState::PerSlot((0..slots).map(|_| TageScL::new(scaled.clone())).collect()),
                    BtbHierarchy::with_config(cfg, seed),
                    CodecState::Identity(IdentityCodec::new()),
                )
            }
            Mechanism::HyBp(hybp_cfg) => {
                // The randomization-only ablation shares the upper levels
                // (a single isolation slot) while keeping per-domain keys on
                // the large tables.
                let upper_slots = if hybp_cfg.isolate_upper { slots } else { 1 };
                let cfg = BtbHierarchyConfig {
                    slots: upper_slots,
                    l2_shared: true,
                    ..zen2
                };
                (
                    DirState::Slotted(Box::new(TageScL::with_slots(tage_cfg, upper_slots))),
                    BtbHierarchy::with_config(cfg, seed),
                    CodecState::Hybp(Box::new(HybpCodec::new(&hybp_cfg, slots, seed)?)),
                )
            }
        };

        let periodic_refresh = match &mechanism {
            Mechanism::HyBp(cfg) => cfg.periodic_refresh.map(|p| (p, p)),
            _ => None,
        };
        Ok(SecureBpu {
            mechanism,
            n_hw_threads,
            dir,
            btb,
            ras: (0..n_hw_threads)
                .map(|_| ReturnAddressStack::new(32))
                .collect(),
            codec,
            domains: (0..n_hw_threads)
                .map(|t| {
                    SecurityDomain::new(HwThreadId::new(t as u8), Asid::new(0), Privilege::User)
                })
                .collect(),
            stats: BpuStats::default(),
            periodic_refresh,
            faults: None,
        })
    }

    /// Attaches (or detaches) a fault injector. The same injector disturbs
    /// BTB payload reads and direction-counter reads here, and — when the
    /// mechanism is HyBP — keys-table reads and refreshes inside the codec.
    pub fn set_fault_injector(&mut self, faults: Option<FaultInjector>) {
        if let CodecState::Hybp(c) = &mut self.codec {
            c.set_fault_injector(faults.clone());
        }
        self.faults = faults;
    }

    /// Installs the telemetry sink. Today the BPU's own hot path stays in
    /// plain counters (the per-branch rate would swamp any event stream);
    /// the sink is forwarded to the codec's key manager, which emits one
    /// `keys/refresh` span per renewal.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let CodecState::Hybp(c) = &mut self.codec {
            c.set_telemetry(telemetry);
        }
    }

    /// Folds a hardware-thread id into the configured range (an out-of-range
    /// id is an anomaly, not a reason to crash).
    fn hw_index(&self, hw: HwThreadId) -> usize {
        bp_common::fast_mod_usize(hw.index(), self.n_hw_threads)
    }

    /// The active mechanism.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mechanism
    }

    /// Number of hardware threads the BPU serves.
    pub fn hw_threads(&self) -> usize {
        self.n_hw_threads
    }

    /// Extra front-end cycles every prediction pays under this mechanism
    /// (non-zero only for the inline-cipher ablation of HyBP).
    pub fn extra_frontend_cycles(&self) -> u32 {
        match &self.mechanism {
            Mechanism::HyBp(cfg) if cfg.inline_cipher => cfg.cipher.inline_latency(),
            _ => 0,
        }
    }

    /// The security domain currently active on `hw`.
    pub fn domain(&self, hw: HwThreadId) -> SecurityDomain {
        self.domains[self.hw_index(hw)]
    }

    /// The full end-of-run observation: core counters, codec counters and
    /// per-slot BTB occupancy in one shape.
    pub fn observation(&self) -> BpuObservation {
        BpuObservation {
            stats: self.stats,
            codec: match &self.codec {
                CodecState::Hybp(c) => Some(c.stats()),
                CodecState::Identity(_) => None,
            },
            btb_occupancy: (0..self.btb.config().slots)
                .map(|s| self.btb.occupancy(s))
                .collect(),
        }
    }

    /// The key-epoch view of isolation slot `slot` at cycle `now`, or
    /// `None` when the mechanism has no key manager (everything but HyBP).
    ///
    /// `refresh_stalls` is manager-wide (all slots share one manager);
    /// `generation`/`stale_hits`/`refresh_in_flight` are per-slot.
    pub fn key_epoch(&self, slot: usize, now: Cycle) -> Option<KeyEpoch> {
        match &self.codec {
            CodecState::Hybp(c) => {
                let km = c.key_manager();
                let table = km.slot(slot).table();
                Some(KeyEpoch {
                    generation: table.generation(),
                    refresh_in_flight: table.refresh_in_flight(now),
                    stale_hits: table.stale_hits(),
                    refresh_stalls: km.refresh_stalls(),
                })
            }
            CodecState::Identity(_) => None,
        }
    }

    fn dir_slot(&self, domain: SecurityDomain) -> usize {
        match &self.dir {
            // Shared baseline: banked per hardware thread (history/base),
            // tables shared.
            DirState::Shared(_) => domain.hw_thread().index(),
            DirState::Tournament(_) => 0,
            // The randomization-only ablation keeps a single shared slot.
            DirState::Slotted(d) if d.slot_count() == 1 => 0,
            DirState::Slotted(_) | DirState::PerSlot(_) => domain.isolation_slot(),
        }
    }

    fn btb_slot(&self, domain: SecurityDomain) -> usize {
        if self.btb.config().slots == 1 {
            0
        } else {
            domain.isolation_slot()
        }
    }

    /// Runs one dynamic branch through the BPU: predict, compare against the
    /// trace outcome, train, and report the front-end cost.
    pub fn process_branch(
        &mut self,
        hw: HwThreadId,
        rec: &BranchRecord,
        now: Cycle,
    ) -> BranchOutcome {
        let hwi = self.hw_index(hw);
        let domain = self.domains[hwi];
        let dir_slot = self.dir_slot(domain);
        let btb_slot = self.btb_slot(domain);
        if let CodecState::Hybp(c) = &mut self.codec {
            c.set_context(domain.isolation_slot(), domain.asid(), Vmid::new(0));
            // A prediction served while the slot's code-book rewrite is
            // still in flight uses stale keys instead of waiting (§V-C2);
            // counting these makes the latency-hiding claim assertable.
            if c.refresh_in_flight(domain.isolation_slot(), now) {
                self.stats.predictions_during_refresh += 1;
            }
        }
        // Preset-frequency key change (§VI-C): renew every slot's keys when
        // the period elapses, independent of context switches.
        if let Some((period, due)) = self.periodic_refresh {
            if now >= due {
                if let CodecState::Hybp(c) = &mut self.codec {
                    for slot in 0..SecurityDomain::slot_count(self.n_hw_threads) {
                        c.renew_slot(slot, domain.asid(), now);
                    }
                }
                self.periodic_refresh = Some((period, now + period));
            }
        }
        self.stats.branches += 1;

        // Split borrows: the codec must be separable from dir/btb/ras/stats.
        // Dispatch on the codec variant ONCE per branch, then run the whole
        // predict/train path monomorphized on the concrete codec so every
        // index/tag/content transform inlines (the `dyn` hop per table access
        // was the single largest per-branch cost).
        let core = BpuCore {
            dir: &mut self.dir,
            btb: &mut self.btb,
            ras: &mut self.ras,
            stats: &mut self.stats,
            faults: self.faults.as_ref(),
        };
        match &mut self.codec {
            CodecState::Identity(c) => core.process(c, hwi, dir_slot, btb_slot, rec, now),
            CodecState::Hybp(c) => core.process(c.as_mut(), hwi, dir_slot, btb_slot, rec, now),
        }
    }

    /// Notifies the BPU that `hw` switched to software thread `new_asid`.
    ///
    /// Returns the cycle at which any background key refresh completes
    /// (HyBP), or `None` for mechanisms without one.
    pub fn on_context_switch(
        &mut self,
        hw: HwThreadId,
        new_asid: Asid,
        now: Cycle,
    ) -> Option<Cycle> {
        self.stats.context_switches += 1;
        let hwi = self.hw_index(hw);
        let old = self.domains[hwi];
        self.domains[hwi] = old.with_asid(new_asid);
        self.ras[hwi].flush();
        match (&self.mechanism, &mut self.dir) {
            (Mechanism::Baseline | Mechanism::DisableSmt | Mechanism::TournamentBaseline, _) => {
                None
            }
            (Mechanism::Flush, DirState::Shared(d)) => {
                use bp_predictors::DirectionPredictor as _;
                d.flush();
                self.btb.flush_all();
                self.stats.full_flushes += 1;
                None
            }
            (Mechanism::Partition | Mechanism::Replication { .. }, DirState::PerSlot(v)) => {
                use bp_predictors::DirectionPredictor as _;
                for p in Privilege::ALL {
                    let slot = old.with_privilege(p).isolation_slot();
                    v[slot].flush();
                    self.btb.flush_slot_upper(slot);
                }
                None
            }
            (Mechanism::HyBp(cfg), DirState::Slotted(d)) => {
                let mut done = now;
                let isolate = cfg.isolate_upper;
                for p in Privilege::ALL {
                    let slot = old.with_privilege(p).isolation_slot();
                    if isolate {
                        d.flush_slot_isolated(slot);
                        self.btb.flush_slot_upper(slot);
                    }
                    if let CodecState::Hybp(c) = &mut self.codec {
                        done = done.max(c.renew_slot(slot, new_asid, now));
                    }
                }
                Some(done)
            }
            // Construction pairs each mechanism with its dir layout; if the
            // pairing is ever broken, degrade to "no background refresh"
            // rather than crash mid-simulation.
            _ => None,
        }
    }

    /// Notifies the BPU that `hw` changed privilege level.
    pub fn on_privilege_change(&mut self, hw: HwThreadId, privilege: Privilege, now: Cycle) {
        let _ = now;
        self.stats.privilege_changes += 1;
        let hwi = self.hw_index(hw);
        self.domains[hwi] = self.domains[hwi].with_privilege(privilege);
        if matches!(self.mechanism, Mechanism::Flush) {
            use bp_predictors::DirectionPredictor as _;
            if let DirState::Shared(d) = &mut self.dir {
                d.flush();
            }
            self.btb.flush_all();
            self.stats.full_flushes += 1;
        }
    }

    /// The L2 BTB geometry (sets/ways) — attack harnesses derive candidate
    /// pools from it.
    pub fn l2_geometry(&self) -> (usize, usize) {
        let g = self.btb.l2_geometry();
        (g.sets, g.ways)
    }

    /// **Evaluation-only ground truth**: the physical L2 set that `pc` maps
    /// to for the domain active on `hw`, under the current keys. Real
    /// attackers have no such oracle; the security harness uses it solely to
    /// *verify* whether an eviction set found through architectural signals
    /// is genuine (the paper verifies against its simulator the same way).
    pub fn debug_l2_set(&mut self, hw: HwThreadId, pc: bp_common::Addr, now: Cycle) -> u64 {
        let domain = self.domains[self.hw_index(hw)];
        if let CodecState::Hybp(c) = &mut self.codec {
            c.set_context(domain.isolation_slot(), domain.asid(), Vmid::new(0));
        }
        let codec: &mut dyn bp_predictors::codec::TableCodec = match &mut self.codec {
            CodecState::Identity(c) => c,
            CodecState::Hybp(c) => c.as_mut(),
        };
        let g = self.btb.l2_geometry();
        let raw = g.raw_index(pc);
        bp_common::fast_mod(
            codec.transform_index(
                bp_predictors::codec::TableId::new(bp_predictors::codec::TableUnit::Btb, 2),
                raw,
                pc,
                now,
            ),
            g.sets as u64,
        )
    }

    /// Total modeled predictor storage in bits (tables only, excluding keys
    /// tables; see [`crate::cost`] for the full cost model).
    pub fn storage_bits(&self) -> u64 {
        let dir = match &self.dir {
            DirState::Shared(d) | DirState::Slotted(d) => d.storage_bits_with_slots(),
            DirState::PerSlot(v) => v.iter().map(TageScL::storage_bits_with_slots).sum(),
            DirState::Tournament(t) => {
                use bp_predictors::DirectionPredictor as _;
                t.storage_bits()
            }
        };
        dir + self.btb.storage_bits()
    }
}

/// Disjoint borrows of everything [`SecureBpu::process_branch`] touches
/// besides the codec, so the per-branch path can be generic over the
/// concrete codec type while the codec itself is borrowed out of the same
/// `SecureBpu`.
struct BpuCore<'a> {
    dir: &'a mut DirState,
    btb: &'a mut BtbHierarchy,
    ras: &'a mut [ReturnAddressStack],
    stats: &'a mut BpuStats,
    faults: Option<&'a FaultInjector>,
}

impl BpuCore<'_> {
    /// The predict/compare/train path for one branch, monomorphized per
    /// codec. Byte-for-byte the same decisions as the former `dyn`-dispatch
    /// body: same table access order, same RNG draws, same counters.
    fn process<C: bp_predictors::codec::TableCodec + ?Sized>(
        self,
        codec: &mut C,
        hwi: usize,
        dir_slot: usize,
        btb_slot: usize,
        rec: &BranchRecord,
        now: Cycle,
    ) -> BranchOutcome {
        // Direction prediction.
        let (predicted_taken, direction_mispredict) = if rec.kind.is_conditional() {
            self.stats.conditional_branches += 1;
            let mut p = match &mut *self.dir {
                DirState::Shared(d) | DirState::Slotted(d) => {
                    d.predict_slot(rec.pc, dir_slot, codec, now)
                }
                DirState::PerSlot(v) => v[dir_slot].predict_slot(rec.pc, 0, codec, now),
                DirState::Tournament(t) => t.predict(rec.pc, codec, now),
            };
            // A transient counter-read fault inverts the *prediction* the
            // front-end sees; the trace outcome (architectural truth) is
            // untouched, so a flip can only cost accuracy.
            if let Some(f) = self.faults {
                if f.flip_direction(now) {
                    p = !p;
                }
            }
            (p, p != rec.taken)
        } else {
            (true, false)
        };
        if direction_mispredict {
            self.stats.direction_mispredicts += 1;
        }

        // Target prediction.
        let mut btb_level = None;
        let mut btb_latency = 0;
        let mut target_mispredict = false;
        match rec.kind {
            BranchKind::Return => {
                let predicted = self.ras[hwi].pop();
                if predicted != Some(rec.target) {
                    target_mispredict = true;
                }
            }
            _ => {
                let lookup = self.btb.lookup_slot(rec.pc, btb_slot, codec, now);
                btb_level = lookup.level();
                if rec.taken {
                    // A transient payload fault flips one bit of the target
                    // fetch *reads*; the stored entry and the trace target
                    // stay intact, so a flip degrades into an ordinary
                    // target mispredict.
                    let read_target = lookup.target().map(|t| match self.faults {
                        Some(f) => match f.on_btb_target(t.raw(), now) {
                            Some(bit) => bp_common::Addr::new(t.raw() ^ (1u64 << (bit % 64))),
                            None => t,
                        },
                        None => t,
                    });
                    match read_target {
                        Some(t) if t == rec.target => {
                            // Correct target; deeper levels still cost fetch
                            // bubbles even when right.
                            btb_latency = lookup.latency();
                        }
                        _ => {
                            // Taken, but fetch had no usable target. Only a
                            // penalty when the direction side said "taken"
                            // (otherwise the direction mispredict already
                            // pays), but unconditional kinds always need it.
                            if predicted_taken {
                                target_mispredict = true;
                            }
                        }
                    }
                    if lookup.is_miss() {
                        self.stats.btb_misses += 1;
                    }
                }
                if let Some(l) = lookup.level() {
                    self.stats.btb_hits[l as usize] += 1;
                }
                if rec.kind == BranchKind::Call {
                    self.ras[hwi].push(rec.pc.wrapping_add(4));
                }
            }
        }
        if target_mispredict {
            self.stats.target_mispredicts += 1;
        }

        // Training.
        if rec.kind.is_conditional() {
            match &mut *self.dir {
                DirState::Shared(d) | DirState::Slotted(d) => {
                    d.update_slot(rec.pc, dir_slot, rec.taken, codec, now)
                }
                DirState::PerSlot(v) => v[dir_slot].update_slot(rec.pc, 0, rec.taken, codec, now),
                DirState::Tournament(t) => t.update(rec.pc, rec.taken, codec, now),
            }
        }
        if rec.taken && rec.kind != BranchKind::Return {
            self.btb
                .update_slot(rec.pc, rec.target, btb_slot, codec, now);
        }

        BranchOutcome {
            direction_mispredict,
            target_mispredict,
            btb_level,
            btb_latency,
        }
    }
}

impl Observable for SecureBpu {
    /// The core counters plus — under HyBP — the codec's counters, as one
    /// flat, deterministically ordered map.
    fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.stats.snapshot();
        if let CodecState::Hybp(c) = &self.codec {
            let cs = c.stats();
            snap = snap
                .with("randomized_accesses", cs.randomized_accesses)
                .with("counter_renewals", cs.counter_renewals);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_common::Addr;

    fn taken_cond(pc: u64, target: u64) -> BranchRecord {
        BranchRecord::conditional(Addr::new(pc), Addr::new(target), true, 4)
    }

    fn run_warm(bpu: &mut SecureBpu, hw: HwThreadId, pc: u64, n: u64) -> u64 {
        let mut mispredicts = 0;
        for i in 0..n {
            let o = bpu.process_branch(hw, &taken_cond(pc, pc + 0x100), 1000 + i * 10);
            if o.mispredicted() {
                mispredicts += 1;
            }
        }
        mispredicts
    }

    #[test]
    fn baseline_learns_quickly() {
        let mut bpu = SecureBpu::new(Mechanism::Baseline, 1, 1).expect("valid config");
        let hw = HwThreadId::new(0);
        let m = run_warm(&mut bpu, hw, 0x4000, 100);
        assert!(m < 10, "baseline warm mispredicts {m}");
        assert!(bpu.observation().stats.direction_accuracy() > 0.9);
    }

    #[test]
    fn key_epoch_tracks_generation_and_stalls() {
        use bp_faults::{FaultInjector, FaultPlan};
        let hw = HwThreadId::new(0);

        // Non-HyBP mechanisms have no key manager.
        let base = SecureBpu::new(Mechanism::Baseline, 1, 1).expect("valid config");
        assert_eq!(base.key_epoch(0, 0), None);

        let mut bpu = SecureBpu::new(Mechanism::hybp_default(), 1, 11).expect("valid config");
        bpu.on_context_switch(hw, Asid::new(1), 0);
        let e0 = bpu.key_epoch(0, 0).expect("hybp exposes key epochs");
        assert_eq!(e0.refresh_stalls, 0);

        // A fault-free context switch advances the generation (once the
        // rewrite lands) and counts no stalls.
        let done = bpu
            .on_context_switch(hw, Asid::new(2), 10_000)
            .expect("renewal acknowledged");
        let e1 = bpu.key_epoch(0, done + 1).expect("hybp exposes key epochs");
        assert!(e1.generation > e0.generation, "rewrite completed");
        assert_eq!(e1.refresh_stalls, 0);

        // A dropped refresh moves refresh_stalls but not the generation:
        // the degraded-mode entry signal.
        let inj = FaultInjector::from_plan(FaultPlan::new(3).with_refresh_drops(1));
        bpu.set_fault_injector(Some(inj));
        bpu.on_context_switch(hw, Asid::new(3), 50_000);
        let e2 = bpu.key_epoch(0, 60_000).expect("hybp exposes key epochs");
        assert_eq!(e2.generation, e1.generation, "rewrite was lost");
        // A context switch renews both privilege slots of the thread, so
        // the (manager-wide) stall counter moves by two.
        assert_eq!(e2.refresh_stalls, 2, "stalls surfaced to the epoch view");
    }

    #[test]
    fn direction_flips_cost_accuracy_only() {
        use bp_faults::{FaultInjector, FaultPlan};
        let mut bpu = SecureBpu::new(Mechanism::hybp_default(), 1, 3).expect("valid config");
        let hw = HwThreadId::new(0);
        bpu.on_context_switch(hw, Asid::new(1), 0);
        run_warm(&mut bpu, hw, 0x4000, 100);
        let inj = FaultInjector::from_plan(FaultPlan::new(1).with_direction_flips(5));
        bpu.set_fault_injector(Some(inj.clone()));
        // Warm predictor + every-5th-read flip: each flip inverts a correct
        // prediction, so roughly one in five branches now mispredicts.
        let m = run_warm(&mut bpu, hw, 0x4000, 100);
        assert!(m >= 15, "flips must surface as mispredicts, got {m}");
        assert!(inj.stats().direction_flips >= 15);
        // Remove the injector: accuracy recovers fully (transient faults
        // never trained the predictor with wrong outcomes).
        bpu.set_fault_injector(None);
        let clean = run_warm(&mut bpu, hw, 0x4000, 100);
        assert!(clean < 5, "recovery after transient flips, got {clean}");
    }

    #[test]
    fn btb_payload_flips_cost_accuracy_only() {
        use bp_faults::{FaultInjector, FaultPlan};
        let mut bpu = SecureBpu::new(Mechanism::hybp_default(), 1, 4).expect("valid config");
        let hw = HwThreadId::new(0);
        bpu.on_context_switch(hw, Asid::new(1), 0);
        run_warm(&mut bpu, hw, 0x4000, 100);
        let inj = FaultInjector::from_plan(FaultPlan::new(2).with_btb_target_flips(3));
        bpu.set_fault_injector(Some(inj.clone()));
        let m = run_warm(&mut bpu, hw, 0x4000, 99);
        assert!(m >= 20, "payload flips must mispredict targets, got {m}");
        assert!(inj.stats().btb_target_flips >= 20);
        bpu.set_fault_injector(None);
        let clean = run_warm(&mut bpu, hw, 0x4000, 100);
        assert!(
            clean < 5,
            "stored BTB entries were never corrupted, got {clean}"
        );
    }

    #[test]
    fn all_mechanisms_process_branches() {
        for mech in [
            Mechanism::Baseline,
            Mechanism::Flush,
            Mechanism::Partition,
            Mechanism::replication_default(),
            Mechanism::DisableSmt,
            Mechanism::hybp_default(),
        ] {
            let mut bpu = SecureBpu::new(mech, 2, 5).expect("valid config");
            let hw = HwThreadId::new(1);
            bpu.on_context_switch(hw, Asid::new(3), 0);
            let m = run_warm(&mut bpu, hw, 0x8000, 200);
            assert!(m < 30, "{mech}: {m} mispredicts in steady state");
        }
    }

    #[test]
    fn flush_loses_state_on_context_switch() {
        let mut bpu = SecureBpu::new(Mechanism::Flush, 1, 2).expect("valid config");
        let hw = HwThreadId::new(0);
        run_warm(&mut bpu, hw, 0x4000, 200);
        bpu.on_context_switch(hw, Asid::new(9), 10_000);
        // Immediately re-running the same branch: cold again.
        let o = bpu.process_branch(hw, &taken_cond(0x4000, 0x4100), 10_001);
        assert!(o.mispredicted(), "flushed predictor must be cold");
        assert!(bpu.observation().stats.full_flushes >= 1);
    }

    #[test]
    fn baseline_keeps_state_on_context_switch() {
        let mut bpu = SecureBpu::new(Mechanism::Baseline, 1, 2).expect("valid config");
        let hw = HwThreadId::new(0);
        run_warm(&mut bpu, hw, 0x4000, 200);
        bpu.on_context_switch(hw, Asid::new(9), 10_000);
        let o = bpu.process_branch(hw, &taken_cond(0x4000, 0x4100), 10_001);
        assert!(!o.mispredicted(), "baseline retains residual state");
    }

    #[test]
    fn hybp_key_change_invalidates_l2_but_keeps_warmup_cheap() {
        let mut bpu = SecureBpu::new(Mechanism::hybp_default(), 1, 3).expect("valid config");
        let hw = HwThreadId::new(0);
        bpu.on_context_switch(hw, Asid::new(1), 0);
        let cold = run_warm(&mut bpu, hw, 0x4000, 50);
        let warm = run_warm(&mut bpu, hw, 0x4000, 50);
        assert!(warm <= cold, "warm phase must not be worse");
        // Context switch away and back: HyBP re-keys, state unusable.
        let done = bpu.on_context_switch(hw, Asid::new(2), 100_000);
        assert!(done.is_some(), "HyBP reports key refresh completion");
        let o = bpu.process_branch(hw, &taken_cond(0x4000, 0x4100), 100_001);
        assert!(o.mispredicted(), "re-keyed predictor must look cold");
    }

    #[test]
    fn flush_on_privilege_change_only_for_flush_mechanism() {
        let mut flush = SecureBpu::new(Mechanism::Flush, 1, 4).expect("valid config");
        let mut hybp = SecureBpu::new(Mechanism::hybp_default(), 1, 4).expect("valid config");
        let hw = HwThreadId::new(0);
        hybp.on_context_switch(hw, Asid::new(1), 0);
        run_warm(&mut flush, hw, 0x4000, 200);
        run_warm(&mut hybp, hw, 0x4000, 200);
        flush.on_privilege_change(hw, Privilege::Kernel, 5000);
        hybp.on_privilege_change(hw, Privilege::Kernel, 5000);
        flush.on_privilege_change(hw, Privilege::User, 5001);
        hybp.on_privilege_change(hw, Privilege::User, 5001);
        let fo = flush.process_branch(hw, &taken_cond(0x4000, 0x4100), 5002);
        let ho = hybp.process_branch(hw, &taken_cond(0x4000, 0x4100), 5002);
        assert!(fo.mispredicted(), "Flush flushed on privilege change");
        assert!(
            !ho.mispredicted(),
            "HyBP user-slot state survives a privilege round-trip"
        );
    }

    #[test]
    fn hybp_isolates_threads_in_smt() {
        let mut bpu = SecureBpu::new(Mechanism::hybp_default(), 2, 5).expect("valid config");
        let t0 = HwThreadId::new(0);
        let t1 = HwThreadId::new(1);
        bpu.on_context_switch(t0, Asid::new(1), 0);
        bpu.on_context_switch(t1, Asid::new(2), 0);
        // Thread 0 trains a branch.
        run_warm(&mut bpu, t0, 0x4000, 300);
        // Thread 1 running the same PC sees no useful state.
        let o = bpu.process_branch(t1, &taken_cond(0x4000, 0x4100), 50_000);
        assert!(o.mispredicted(), "cross-thread state must be unusable");
    }

    #[test]
    fn baseline_leaks_across_threads_in_smt() {
        // The contrast case: without protection, thread 1 benefits from
        // thread 0's training — exactly the shared-state property attacks
        // exploit.
        let mut bpu = SecureBpu::new(Mechanism::Baseline, 2, 5).expect("valid config");
        let t0 = HwThreadId::new(0);
        let t1 = HwThreadId::new(1);
        run_warm(&mut bpu, t0, 0x4000, 300);
        let o = bpu.process_branch(t1, &taken_cond(0x4000, 0x4100), 50_000);
        assert!(!o.mispredicted(), "baseline shares predictor state");
    }

    #[test]
    fn returns_use_ras() {
        let mut bpu = SecureBpu::new(Mechanism::Baseline, 1, 6).expect("valid config");
        let hw = HwThreadId::new(0);
        let call =
            BranchRecord::unconditional(Addr::new(0x1000), BranchKind::Call, Addr::new(0x9000), 2);
        let ret = BranchRecord::unconditional(
            Addr::new(0x9050),
            BranchKind::Return,
            Addr::new(0x1004),
            3,
        );
        let _ = bpu.process_branch(hw, &call, 0);
        let o = bpu.process_branch(hw, &ret, 1);
        assert!(!o.target_mispredict, "RAS must predict the return");
        // A return without a matching call mispredicts.
        let o2 = bpu.process_branch(hw, &ret, 2);
        assert!(o2.target_mispredict);
    }

    #[test]
    fn btb_latency_charged_for_lower_level_hits() {
        let mut bpu = SecureBpu::new(Mechanism::Baseline, 1, 7).expect("valid config");
        let hw = HwThreadId::new(0);
        // Train many branches so some live only in L1/L2.
        for i in 0..2000u64 {
            let r = BranchRecord::unconditional(
                Addr::new(0x10_0000 + i * 4),
                BranchKind::Direct,
                Addr::new(0x20_0000 + i * 4),
                1,
            );
            let _ = bpu.process_branch(hw, &r, i);
        }
        let mut latencies = std::collections::BTreeSet::new();
        for i in 0..2000u64 {
            let r = BranchRecord::unconditional(
                Addr::new(0x10_0000 + i * 4),
                BranchKind::Direct,
                Addr::new(0x20_0000 + i * 4),
                1,
            );
            let o = bpu.process_branch(hw, &r, 10_000 + i);
            if !o.mispredicted() {
                latencies.insert(o.btb_latency);
            }
        }
        assert!(
            latencies.len() > 1,
            "expected a mix of BTB hit latencies, got {latencies:?}"
        );
    }

    #[test]
    fn inline_cipher_reports_extra_latency() {
        let mut cfg = crate::HybpConfig::paper_default();
        cfg.inline_cipher = true;
        let bpu = SecureBpu::new(Mechanism::HyBp(cfg), 1, 8).expect("valid config");
        assert_eq!(bpu.extra_frontend_cycles(), 8);
        let normal = SecureBpu::new(Mechanism::hybp_default(), 1, 8).expect("valid config");
        assert_eq!(normal.extra_frontend_cycles(), 0);
    }

    #[test]
    fn partition_storage_is_not_larger_than_baseline() {
        let base = SecureBpu::new(Mechanism::Baseline, 2, 9).expect("valid config");
        let part = SecureBpu::new(Mechanism::Partition, 2, 9).expect("valid config");
        // Partition divides the same storage; small rounding slack allowed.
        assert!(
            part.storage_bits() <= base.storage_bits() + base.storage_bits() / 8,
            "partition {} vs baseline {}",
            part.storage_bits(),
            base.storage_bits()
        );
    }

    #[test]
    fn randomization_only_shares_upper_levels() {
        // Without upper-level isolation, cross-thread residual state is
        // visible again at L0/L1 (the ablation's security regression).
        let mut bpu = SecureBpu::new(
            Mechanism::HyBp(crate::HybpConfig::randomization_only()),
            2,
            5,
        )
        .expect("valid config");
        let t0 = HwThreadId::new(0);
        let t1 = HwThreadId::new(1);
        bpu.on_context_switch(t0, Asid::new(1), 0);
        bpu.on_context_switch(t1, Asid::new(2), 0);
        run_warm(&mut bpu, t0, 0x4000, 300);
        let o = bpu.process_branch(t1, &taken_cond(0x4000, 0x4100), 50_000);
        assert!(
            !o.mispredicted(),
            "shared upper levels leak across threads in the ablation"
        );
    }

    #[test]
    fn periodic_refresh_rekeys_without_context_switches() {
        let mut cfg = crate::HybpConfig::paper_default();
        cfg.periodic_refresh = Some(10_000);
        let mut bpu = SecureBpu::new(Mechanism::HyBp(cfg), 1, 6).expect("valid config");
        let hw = HwThreadId::new(0);
        bpu.on_context_switch(hw, Asid::new(1), 0);
        // Warm, then run past several refresh periods; the L2-resident state
        // is invalidated by each re-key while L0/L1 state survives, so the
        // branch keeps predicting (its own slot is isolated, not re-keyed
        // content): observable effect = codec generation growth.
        run_warm(&mut bpu, hw, 0x4000, 50);
        for i in 0..10u64 {
            let _ = bpu.process_branch(hw, &taken_cond(0x9000 + i * 8, 0xA000), 20_000 + i * 9_000);
        }
        let gen = bpu.observation().codec.is_some();
        assert!(gen, "codec must be present");
        // Direct check through the key manager: generations advanced beyond
        // the initial context-switch renewals.
        if let Mechanism::HyBp(_) = bpu.mechanism() {
            // at least one periodic renewal must have happened by cycle 110k
            let _ = bpu.process_branch(hw, &taken_cond(0x9100, 0xA000), 120_000);
        }
    }

    #[test]
    fn replication_scales_storage() {
        let r100 = SecureBpu::new(
            Mechanism::Replication {
                extra_storage_pct: 100,
            },
            2,
            9,
        )
        .expect("valid config");
        let r300 = SecureBpu::new(
            Mechanism::Replication {
                extra_storage_pct: 300,
            },
            2,
            9,
        )
        .expect("valid config");
        assert!(r300.storage_bits() > r100.storage_bits());
    }
}
