//! Property-based tests on the HyBP codec and mechanisms.

use bp_common::{Addr, Asid, BranchRecord, HwThreadId, Vmid};
use bp_predictors::codec::{TableCodec, TableId, TableUnit};
use hybp::{HybpCodec, HybpConfig, Mechanism, SecureBpu};
use proptest::prelude::*;

fn l2() -> TableId {
    TableId::new(TableUnit::Btb, 2)
}

proptest! {
    /// Content encode/decode round-trips for any value, slot and key state.
    #[test]
    fn content_roundtrips(value in any::<u64>(), slot in 0usize..4, seed in any::<u64>()) {
        let mut c = HybpCodec::new(&HybpConfig::paper_default(), 4, seed);
        c.renew_slot(slot, Asid::new(1), 0);
        c.set_context(slot, Asid::new(1), Vmid::new(0));
        let enc = c.encode_content(l2(), value);
        prop_assert_eq!(c.decode_content(l2(), enc), value);
    }

    /// Index/tag transforms are deterministic between key changes: the same
    /// (pc, raw) maps identically at any two times within a generation.
    #[test]
    fn transforms_stable_within_generation(
        pc in any::<u64>(),
        raw in any::<u64>(),
        t1 in 10_000u64..1_000_000,
        t2 in 10_000u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut c = HybpCodec::new(&HybpConfig::paper_default(), 4, seed);
        c.renew_slot(0, Asid::new(1), 0);
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let a = c.transform_index(l2(), raw, Addr::new(pc), t1);
        let b = c.transform_index(l2(), raw, Addr::new(pc), t2);
        prop_assert_eq!(a, b);
        let ta = c.transform_tag(l2(), raw, Addr::new(pc), t1);
        let tb = c.transform_tag(l2(), raw, Addr::new(pc), t2);
        prop_assert_eq!(ta, tb);
    }

    /// Isolated tables pass through unchanged for any inputs.
    #[test]
    fn isolated_tables_identity(
        raw in any::<u64>(),
        pc in any::<u64>(),
        level in 0usize..2,
        seed in any::<u64>(),
    ) {
        let mut c = HybpCodec::new(&HybpConfig::paper_default(), 4, seed);
        c.renew_slot(0, Asid::new(1), 0);
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let id = TableId::new(TableUnit::Btb, level);
        prop_assert_eq!(c.transform_index(id, raw, Addr::new(pc), 5_000), raw);
        prop_assert_eq!(c.encode_content(id, raw), raw);
        let base = TableId::new(TableUnit::TageBase, 0);
        prop_assert_eq!(c.transform_index(base, raw, Addr::new(pc), 5_000), raw);
    }

    /// The BPU never panics and keeps counters consistent for arbitrary
    /// branch streams under every mechanism.
    #[test]
    fn bpu_counters_consistent(
        stream in proptest::collection::vec((any::<u16>(), any::<bool>(), any::<u16>()), 1..80),
        seed in any::<u64>(),
    ) {
        for mech in [Mechanism::Baseline, Mechanism::hybp_default(), Mechanism::Partition] {
            let mut bpu = SecureBpu::new(mech, 2, seed);
            let hw = HwThreadId::new((seed % 2) as u8);
            bpu.on_context_switch(hw, Asid::new(5), 0);
            let mut conds = 0u64;
            for (i, &(pc16, taken, tgt16)) in stream.iter().enumerate() {
                let r = BranchRecord::conditional(
                    Addr::new(0x1000 + u64::from(pc16) * 4),
                    Addr::new(0x9000 + u64::from(tgt16) * 4),
                    taken,
                    1,
                );
                conds += 1;
                let _ = bpu.process_branch(hw, &r, 1_000 + i as u64 * 8);
            }
            let s = bpu.stats();
            prop_assert_eq!(s.branches, conds);
            prop_assert_eq!(s.conditional_branches, conds);
            prop_assert!(s.direction_mispredicts <= conds);
        }
    }

    /// Renewing one slot never perturbs another slot's index mapping.
    #[test]
    fn renewal_is_slot_local(pc in any::<u64>(), raw in any::<u64>(), seed in any::<u64>()) {
        let mut c = HybpCodec::new(&HybpConfig::paper_default(), 4, seed);
        c.renew_slot(0, Asid::new(1), 0);
        c.renew_slot(1, Asid::new(2), 0);
        c.set_context(1, Asid::new(2), Vmid::new(0));
        let before = c.transform_index(l2(), raw, Addr::new(pc), 50_000);
        c.renew_slot(0, Asid::new(1), 60_000);
        c.set_context(1, Asid::new(2), Vmid::new(0));
        let after = c.transform_index(l2(), raw, Addr::new(pc), 70_000);
        prop_assert_eq!(before, after);
    }
}
