//! Property-based tests on the HyBP codec and mechanisms, on the in-repo
//! deterministic harness (`bp_common::check`).

use bp_common::check::Checker;
use bp_common::{Addr, Asid, BranchRecord, HwThreadId, Vmid};
use bp_predictors::codec::{TableCodec, TableId, TableUnit};
use hybp::{HybpCodec, HybpConfig, Mechanism, SecureBpu};

fn l2() -> TableId {
    TableId::new(TableUnit::Btb, 2)
}

fn codec(seed: u64) -> HybpCodec {
    HybpCodec::new(&HybpConfig::paper_default(), 4, seed).expect("paper default is valid")
}

/// Content encode/decode round-trips for any value, slot and key state.
#[test]
fn content_roundtrips() {
    Checker::new("content_roundtrips").cases(128).run(|g| {
        let (value, seed) = (g.u64(), g.u64());
        let slot = g.usize_in(0, 4);
        let mut c = codec(seed);
        c.renew_slot(slot, Asid::new(1), 0);
        c.set_context(slot, Asid::new(1), Vmid::new(0));
        let enc = c.encode_content(l2(), value);
        assert_eq!(c.decode_content(l2(), enc), value);
    });
}

/// Index/tag transforms are deterministic between key changes: the same
/// (pc, raw) maps identically at any two times within a generation.
#[test]
fn transforms_stable_within_generation() {
    Checker::new("transforms_stable_within_generation").run(|g| {
        let (pc, raw, seed) = (g.u64(), g.u64(), g.u64());
        let t1 = g.in_range(10_000, 1_000_000);
        let t2 = g.in_range(10_000, 1_000_000);
        let mut c = codec(seed);
        c.renew_slot(0, Asid::new(1), 0);
        c.set_context(0, Asid::new(1), Vmid::new(0));
        let a = c.transform_index(l2(), raw, Addr::new(pc), t1);
        let b = c.transform_index(l2(), raw, Addr::new(pc), t2);
        assert_eq!(a, b);
        let ta = c.transform_tag(l2(), raw, Addr::new(pc), t1);
        let tb = c.transform_tag(l2(), raw, Addr::new(pc), t2);
        assert_eq!(ta, tb);
    });
}

/// Isolated tables pass through unchanged for any inputs.
#[test]
fn isolated_tables_identity() {
    Checker::new("isolated_tables_identity")
        .cases(128)
        .run(|g| {
            let (raw, pc, seed) = (g.u64(), g.u64(), g.u64());
            let level = g.usize_in(0, 2);
            let mut c = codec(seed);
            c.renew_slot(0, Asid::new(1), 0);
            c.set_context(0, Asid::new(1), Vmid::new(0));
            let id = TableId::new(TableUnit::Btb, level);
            assert_eq!(c.transform_index(id, raw, Addr::new(pc), 5_000), raw);
            assert_eq!(c.encode_content(id, raw), raw);
            let base = TableId::new(TableUnit::TageBase, 0);
            assert_eq!(c.transform_index(base, raw, Addr::new(pc), 5_000), raw);
        });
}

/// The BPU never panics and keeps counters consistent for arbitrary branch
/// streams under every mechanism.
#[test]
fn bpu_counters_consistent() {
    Checker::new("bpu_counters_consistent").cases(24).run(|g| {
        let seed = g.u64();
        let stream = {
            let len = g.usize_in(1, 80);
            g.vec(len, |g| {
                (
                    g.u32_in(0, 1 << 16) as u16,
                    g.bool(),
                    g.u32_in(0, 1 << 16) as u16,
                )
            })
        };
        for mech in [
            Mechanism::Baseline,
            Mechanism::hybp_default(),
            Mechanism::Partition,
        ] {
            let mut bpu = SecureBpu::new(mech, 2, seed).expect("valid config");
            let hw = HwThreadId::new((seed % 2) as u8);
            bpu.on_context_switch(hw, Asid::new(5), 0);
            let mut conds = 0u64;
            for (i, &(pc16, taken, tgt16)) in stream.iter().enumerate() {
                let r = BranchRecord::conditional(
                    Addr::new(0x1000 + u64::from(pc16) * 4),
                    Addr::new(0x9000 + u64::from(tgt16) * 4),
                    taken,
                    1,
                );
                conds += 1;
                let _ = bpu.process_branch(hw, &r, 1_000 + i as u64 * 8);
            }
            let s = bpu.observation().stats;
            assert_eq!(s.branches, conds);
            assert_eq!(s.conditional_branches, conds);
            assert!(s.direction_mispredicts <= conds);
        }
    });
}

/// Renewing one slot never perturbs another slot's index mapping.
#[test]
fn renewal_is_slot_local() {
    Checker::new("renewal_is_slot_local").cases(128).run(|g| {
        let (pc, raw, seed) = (g.u64(), g.u64(), g.u64());
        let mut c = codec(seed);
        c.renew_slot(0, Asid::new(1), 0);
        c.renew_slot(1, Asid::new(2), 0);
        c.set_context(1, Asid::new(2), Vmid::new(0));
        let before = c.transform_index(l2(), raw, Addr::new(pc), 50_000);
        c.renew_slot(0, Asid::new(1), 60_000);
        c.set_context(1, Asid::new(2), Vmid::new(0));
        let after = c.transform_index(l2(), raw, Addr::new(pc), 70_000);
        assert_eq!(before, after);
    });
}

/// Construction rejects invalid configurations with typed errors instead of
/// panicking.
#[test]
fn construction_rejects_bad_configs() {
    assert!(SecureBpu::new(Mechanism::Baseline, 0, 1).is_err());
    let mut cfg = HybpConfig::paper_default();
    cfg.renewal_threshold = 0;
    assert!(SecureBpu::new(Mechanism::HyBp(cfg), 2, 1).is_err());
    assert!(HybpCodec::new(&cfg, 4, 1).is_err());
    assert!(SecureBpu::new(
        Mechanism::Replication {
            extra_storage_pct: 100_000
        },
        2,
        1
    )
    .is_err());
}
