//! End-to-end simulator throughput: simulated instructions per wall-clock
//! second for the baseline and HyBP configurations (how expensive the
//! security layer is to *simulate*).

use bp_pipeline::{SimConfig, Simulation};
use bp_workloads::profile::SpecBenchmark;
use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hybp::Mechanism;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let instructions = 200_000u64;
    g.throughput(Throughput::Elements(instructions));
    g.sample_size(10);
    for (name, mech) in [
        ("baseline", Mechanism::Baseline),
        ("hybp", Mechanism::hybp_default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::quick_test();
                cfg.warmup_instructions = 10_000;
                cfg.measure_instructions = instructions;
                Simulation::single_thread(mech, SpecBenchmark::Xz, cfg)
                    .run()
                    .throughput()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
