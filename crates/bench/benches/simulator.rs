//! End-to-end simulator throughput: simulated instructions per wall-clock
//! second for the baseline and HyBP configurations (how expensive the
//! security layer is to *simulate*).

use std::time::Duration;

use bench::timing::Bench;
use bp_pipeline::{SimConfig, Simulation};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

fn main() {
    let instructions = 200_000u64;
    for (name, mech) in [
        ("baseline", Mechanism::Baseline),
        ("hybp", Mechanism::hybp_default()),
    ] {
        let report = Bench::new(format!("simulator/{name}"))
            .warmup_for(Duration::from_millis(500))
            .measure_for(Duration::from_secs(2))
            .run(|| {
                let mut cfg = SimConfig::quick_test();
                cfg.warmup_instructions = 10_000;
                cfg.measure_instructions = instructions;
                Simulation::builder(mech, cfg)
                    .single_thread(SpecBenchmark::Xz)
                    .build()
                    .expect("valid config")
                    .run()
                    .expect("completes")
                    .throughput()
            });
        println!(
            "  -> {:.1}M simulated instructions / second",
            report.per_second() * (instructions + 10_000) as f64 / 1e6
        );
    }
}
