//! Cipher throughput: QARMA-64 vs PRINCE vs LLBC vs XOR.
//!
//! The paper's latency-hiding argument rests on strong ciphers being slow
//! relative to a 2-3 cycle prediction path; these benchmarks show the
//! software-model cost ordering (the hardware numbers are 8 vs 2 vs 1
//! cycles).

use bench::timing::{black_box, Bench};
use bp_crypto::{Llbc, Prince, Qarma64, TweakableBlockCipher, XorCipher};

fn bench_cipher(name: &str, c: &dyn TweakableBlockCipher) {
    let mut x = 0u64;
    Bench::new(format!("cipher_encrypt/{name}")).run(|| {
        x = c.encrypt(black_box(x), 7);
        x
    });
}

fn main() {
    bench_cipher("qarma64", &Qarma64::from_seed(1));
    bench_cipher("prince", &Prince::from_seed(2));
    bench_cipher("llbc", &Llbc::from_seed(3));
    bench_cipher("xor", &XorCipher::new(4));
}
