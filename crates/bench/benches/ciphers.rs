//! Cipher throughput: QARMA-64 vs PRINCE vs LLBC vs XOR.
//!
//! The paper's latency-hiding argument rests on strong ciphers being slow
//! relative to a 2-3 cycle prediction path; these benchmarks show the
//! software-model cost ordering (the hardware numbers are 8 vs 2 vs 1
//! cycles).

use bp_crypto::{Llbc, Prince, Qarma64, TweakableBlockCipher, XorCipher};
use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_ciphers(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher_encrypt");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let qarma = Qarma64::from_seed(1);
    let prince = Prince::from_seed(2);
    let llbc = Llbc::from_seed(3);
    let xor = XorCipher::new(4);
    g.bench_function("qarma64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = qarma.encrypt(black_box(x), 7);
            x
        })
    });
    g.bench_function("prince", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = prince.encrypt(black_box(x), 7);
            x
        })
    });
    g.bench_function("llbc", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = llbc.encrypt(black_box(x), 7);
            x
        })
    });
    g.bench_function("xor", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = xor.encrypt(black_box(x), 7);
            x
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ciphers);
criterion_main!(benches);
