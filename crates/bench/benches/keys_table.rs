//! Keys-table ("code book") operations: lookup and full refresh across the
//! Table VI size range. The refresh is the paper's 263-cycle hardware
//! operation; here we measure the simulation cost per size.

use bench::timing::{black_box, Bench};
use bp_common::{Asid, Vmid};
use bp_crypto::keys::{IndexSeed, KeysTable, KeysTableConfig};
use bp_crypto::Qarma64;

fn main() {
    let cipher = Qarma64::from_seed(7);
    for entries in [1024usize, 4096, 32 * 1024] {
        let mut t = KeysTable::new(KeysTableConfig::with_entries(entries)).expect("valid size");
        let seed = IndexSeed::derive(Asid::new(1), Vmid::new(0), 42);
        let mut base = 0u64;
        Bench::new(format!("keys_table_refresh/{entries}")).run(|| {
            base = base.wrapping_add(4096);
            t.begin_refresh(&cipher, seed, black_box(base), 0);
        });
    }

    let cipher = Qarma64::from_seed(8);
    let mut t = KeysTable::new(KeysTableConfig::paper_default()).expect("paper default");
    t.begin_refresh(
        &cipher,
        IndexSeed::derive(Asid::new(2), Vmid::new(0), 1),
        0,
        0,
    );
    let mut i = 0usize;
    Bench::new("keys_table_lookup").run(|| {
        i = (i + 1) % 1024;
        t.key_at(black_box(i), 1_000_000)
    });
}
