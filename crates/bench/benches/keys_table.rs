//! Keys-table ("code book") operations: lookup and full refresh across the
//! Table VI size range. The refresh is the paper's 263-cycle hardware
//! operation; here we measure the simulation cost per size.

use bp_common::{Asid, Vmid};
use bp_crypto::keys::{IndexSeed, KeysTable, KeysTableConfig};
use bp_crypto::Qarma64;
use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_refresh(c: &mut Criterion) {
    let cipher = Qarma64::from_seed(7);
    let mut g = c.benchmark_group("keys_table_refresh");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for entries in [1024usize, 4096, 32 * 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, &n| {
            let mut t = KeysTable::new(KeysTableConfig::with_entries(n));
            let seed = IndexSeed::derive(Asid::new(1), Vmid::new(0), 42);
            let mut base = 0u64;
            b.iter(|| {
                base = base.wrapping_add(4096);
                t.begin_refresh(&cipher, seed, black_box(base), 0);
            })
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let cipher = Qarma64::from_seed(8);
    let mut t = KeysTable::new(KeysTableConfig::paper_default());
    t.begin_refresh(&cipher, IndexSeed::derive(Asid::new(2), Vmid::new(0), 1), 0, 0);
    c.bench_function("keys_table_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 1024;
            t.key_at(black_box(i), 1_000_000)
        })
    });
}

criterion_group!(benches, bench_refresh, bench_lookup);
criterion_main!(benches);
