//! Cost of the telemetry layer on the simulation hot path.
//!
//! Two claims are measured: a disabled sink is free (one branch per
//! would-be event, so the full-simulation throughput with a disabled sink
//! matches a plain run), and an enabled ring sink stays cheap because the
//! hot path only *counts* — span events are emitted at rare occurrences
//! (context switches, key refreshes), never per branch.

use std::time::Duration;

use bench::timing::Bench;
use bp_common::Telemetry;
use bp_pipeline::{SimConfig, Simulation};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

const INSTRUCTIONS: u64 = 200_000;

fn sim_throughput(telemetry: Telemetry) -> f64 {
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = 10_000;
    cfg.measure_instructions = INSTRUCTIONS;
    cfg.ctx_switch_interval = 25_000; // force span traffic when enabled
    Simulation::builder(Mechanism::hybp_default(), cfg)
        .single_thread(SpecBenchmark::Xz)
        .telemetry(telemetry)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
        .throughput()
}

fn main() {
    for (name, enabled) in [("disabled-sink", false), ("ring-sink", true)] {
        let report = Bench::new(format!("telemetry/simulation-{name}"))
            .warmup_for(Duration::from_millis(500))
            .measure_for(Duration::from_secs(2))
            .run(|| {
                sim_throughput(if enabled {
                    Telemetry::ring(1 << 16)
                } else {
                    Telemetry::disabled()
                })
            });
        println!(
            "  -> {:.1}M simulated instructions / second",
            report.per_second() * (INSTRUCTIONS + 10_000) as f64 / 1e6
        );
    }

    // The raw cost of a skipped event on a disabled sink.
    let sink = Telemetry::disabled();
    let report = Bench::new("telemetry/disabled-emit-1k".to_string())
        .warmup_for(Duration::from_millis(200))
        .measure_for(Duration::from_secs(1))
        .run(|| {
            for c in 0..1_000u64 {
                sink.span(c, "bench", "noop", c, c + 1, 0);
            }
            sink.dropped()
        });
    println!(
        "  -> {:.1}M skipped emits / second",
        report.per_second() * 1_000.0 / 1e6
    );
}
