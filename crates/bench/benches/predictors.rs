//! Predictor structure throughput: TAGE-SC-L and BTB hierarchy operations,
//! with and without the HyBP randomizing codec (quantifying the simulation
//! cost of the security layer — in hardware the keys-table read is a fixed
//! 1-cycle SRAM access).

use bench::timing::{black_box, Bench};
use bp_common::{Addr, Asid, Vmid};
use bp_predictors::btb::BtbHierarchy;
use bp_predictors::codec::IdentityCodec;
use bp_predictors::tage_scl::TageScL;
use bp_predictors::DirectionPredictor;
use hybp::{HybpCodec, HybpConfig};

fn main() {
    {
        let mut p = TageScL::paper_default();
        let mut codec = IdentityCodec::new();
        let mut i = 0u64;
        Bench::new("tage_scl/predict_update_identity").run(|| {
            let pc = Addr::new(0x1000 + (i % 512) * 16);
            let pred = p.predict(black_box(pc), &mut codec, i);
            p.update(pc, !i.is_multiple_of(3), &mut codec, i);
            i += 1;
            pred
        });
    }
    {
        let mut p = TageScL::paper_default();
        let mut codec = HybpCodec::new(&HybpConfig::paper_default(), 4, 9).expect("paper default");
        codec.renew_slot(0, Asid::new(1), 0);
        codec.set_context(0, Asid::new(1), Vmid::new(0));
        let mut i = 0u64;
        Bench::new("tage_scl/predict_update_hybp_codec").run(|| {
            let pc = Addr::new(0x1000 + (i % 512) * 16);
            let pred = p.predict(black_box(pc), &mut codec, i);
            p.update(pc, !i.is_multiple_of(3), &mut codec, i);
            i += 1;
            pred
        });
    }
    {
        let mut btb = BtbHierarchy::zen2();
        let mut codec = IdentityCodec::new();
        let mut i = 0u64;
        Bench::new("btb_hierarchy/lookup_update").run(|| {
            let pc = Addr::new(0x1000 + (i % 4096) * 20);
            let r = btb.lookup(black_box(pc), &mut codec, i);
            btb.update(pc, pc.wrapping_add(0x40), &mut codec, i);
            i += 1;
            r.latency()
        });
    }
}
