//! Predictor structure throughput: TAGE-SC-L and BTB hierarchy operations,
//! with and without the HyBP randomizing codec (quantifying the simulation
//! cost of the security layer — in hardware the keys-table read is a fixed
//! 1-cycle SRAM access).

use bp_common::{Addr, Asid, Vmid};
use bp_predictors::btb::BtbHierarchy;
use bp_predictors::codec::IdentityCodec;
use bp_predictors::tage_scl::TageScL;
use bp_predictors::DirectionPredictor;
use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hybp::{HybpCodec, HybpConfig};

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("tage_scl");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("predict_update_identity", |b| {
        let mut p = TageScL::paper_default();
        let mut codec = IdentityCodec::new();
        let mut i = 0u64;
        b.iter(|| {
            let pc = Addr::new(0x1000 + (i % 512) * 16);
            let pred = p.predict(black_box(pc), &mut codec, i);
            p.update(pc, i % 3 != 0, &mut codec, i);
            i += 1;
            pred
        })
    });
    g.bench_function("predict_update_hybp_codec", |b| {
        let mut p = TageScL::paper_default();
        let mut codec = HybpCodec::new(&HybpConfig::paper_default(), 4, 9);
        codec.renew_slot(0, Asid::new(1), 0);
        codec.set_context(0, Asid::new(1), Vmid::new(0));
        let mut i = 0u64;
        b.iter(|| {
            let pc = Addr::new(0x1000 + (i % 512) * 16);
            let pred = p.predict(black_box(pc), &mut codec, i);
            p.update(pc, i % 3 != 0, &mut codec, i);
            i += 1;
            pred
        })
    });
    g.finish();
}

fn bench_btb(c: &mut Criterion) {
    let mut g = c.benchmark_group("btb_hierarchy");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("lookup_update", |b| {
        let mut btb = BtbHierarchy::zen2();
        let mut codec = IdentityCodec::new();
        let mut i = 0u64;
        b.iter(|| {
            let pc = Addr::new(0x1000 + (i % 4096) * 20);
            let r = btb.lookup(black_box(pc), &mut codec, i);
            btb.update(pc, pc.wrapping_add(0x40), &mut codec, i);
            i += 1;
            r.latency()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tage, bench_btb);
criterion_main!(benches);
