//! Guarantees around the pinned perf trajectory: the committed
//! `BENCH_speed.json` must stay schema-valid and tied to the current code
//! fingerprint, and the "observationally pure speedup" claim — hot-path
//! optimization never changes a result — is enforced by byte-comparing
//! experiment CSVs across worker counts.

use bench::cache::ModelCache;
use bench::speed::{self, KERNELS};
use bench::{Ctx, Scale};
use bp_common::pool::Pool;
use bp_workloads::profile::SpecBenchmark;

/// The committed root-level trajectory file.
fn committed_report_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_speed.json");
    std::fs::read_to_string(path).expect("BENCH_speed.json is committed at the repo root")
}

#[test]
fn committed_bench_speed_json_is_schema_valid() {
    let report = speed::parse_report(&committed_report_text()).expect("strict parse");
    speed::validate(&report).expect("semantic validation");

    // Every hot-path kernel is present, in canonical order, with sane
    // numbers.
    let names: Vec<&str> = report.kernels.iter().map(|k| k.name.as_str()).collect();
    assert_eq!(names, KERNELS, "live kernel set/order");
    for k in &report.kernels {
        assert!(
            k.branches_per_sec > 0.0 && k.ns_per_op > 0.0 && k.p99_ns > 0.0,
            "kernel {} must carry positive measurements",
            k.name
        );
        assert!(
            k.p99_ns >= k.ns_per_op,
            "kernel {}: p99 below the median",
            k.name
        );
    }

    // The pre-optimization baseline is pinned so the trajectory (and the
    // CI regression gate) has a fixed reference.
    let baseline = report.baseline.as_ref().expect("pinned baseline block");
    let base_names: Vec<&str> = baseline.kernels.iter().map(|k| k.name.as_str()).collect();
    assert_eq!(base_names, KERNELS, "baseline kernel set/order");

    // The file must identify the code revision that produced it.
    assert_eq!(
        report.fingerprint,
        speed::fingerprint(),
        "BENCH_speed.json fingerprint is stale — regenerate with \
         `cargo run --release -p bench --bin bench_speed`"
    );
}

#[test]
fn report_render_parse_round_trips() {
    let report = speed::parse_report(&committed_report_text()).expect("strict parse");
    let rendered = speed::render_report(&report);
    let reparsed = speed::parse_report(&rendered).expect("rendered report reparses");
    assert_eq!(report, reparsed, "render/parse must be lossless");
}

/// A context with a disabled cache in a fresh temp dir: every point truly
/// simulates, so the comparison exercises the monomorphized hot path, not
/// the cache.
fn csv_ctx(base: &std::path::Path, threads: usize) -> Ctx {
    Ctx::custom(
        Scale::Quick,
        Pool::new(threads),
        ModelCache::at_dir(base.join("cache"), false),
    )
    .with_results_dir(base.join("results"))
}

fn csv_bytes_for_threads(tag: &str, threads: usize, run: impl Fn(&Ctx), csv_name: &str) -> String {
    let base = std::env::temp_dir().join(format!(
        "hybp-speed-determinism-{tag}-t{threads}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let ctx = csv_ctx(&base, threads);
    run(&ctx);
    let text = std::fs::read_to_string(base.join("results").join(csv_name)).expect("CSV written");
    let _ = std::fs::remove_dir_all(&base);
    text
}

/// Fig. 5 (per-app IPC bars, subset): byte-identical CSV at 1 and 4 worker
/// threads. This is the regression gate for the speed campaign — kernels
/// may only get faster, never different.
#[test]
fn fig5_csv_is_byte_identical_across_thread_counts() {
    let benches = [SpecBenchmark::Mcf, SpecBenchmark::Xz];
    let texts: Vec<String> = [1usize, 4]
        .iter()
        .map(|&threads| {
            csv_bytes_for_threads(
                "fig5",
                threads,
                |ctx| {
                    bench::experiments::fig5::run_with_benches(ctx, &benches)
                        .expect("fig5 subset runs clean");
                },
                "fig5_hybp_per_app.csv",
            )
        })
        .collect();
    assert!(!texts[0].is_empty(), "CSV must carry rows");
    assert_eq!(texts[0], texts[1], "fig5 CSV depends on the worker count");
}

/// Fig. 7 (SMT mixes): the same byte-identity guarantee for the SMT path.
/// The full mix table is simulation-heavy, so debug runs skip it; the CI
/// perf-trajectory job runs it in release with `--include-ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run in release CI")]
fn fig7_csv_is_byte_identical_across_thread_counts() {
    let texts: Vec<String> = [1usize, 4]
        .iter()
        .map(|&threads| {
            csv_bytes_for_threads(
                "fig7",
                threads,
                |ctx| {
                    bench::experiments::fig7::run(ctx).expect("fig7 runs clean");
                },
                "fig7_smt_mixes.csv",
            )
        })
        .collect();
    assert!(!texts[0].is_empty(), "CSV must carry rows");
    assert_eq!(texts[0], texts[1], "fig7 CSV depends on the worker count");
}
