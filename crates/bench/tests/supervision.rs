//! Supervised-sweep guarantees: a failing sweep point costs that point,
//! never the experiment; retries recover transient faults bit-exactly;
//! partial CSVs are marked; and none of it perturbs a clean run.

use bench::cache::ModelCache;
use bench::{Ctx, Scale};
use bp_common::pool::{Pool, RetryPolicy};
use bp_faults::points::PointFaultPlan;

/// A context with a temp results dir and temp cache dir, threaded, with
/// the standard retry policy and the given fault plan.
fn tmp_ctx(tag: &str, threads: usize, plan: &str) -> Ctx {
    let base = std::env::temp_dir().join(format!("hybp-supervision-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    Ctx::custom(
        Scale::Quick,
        Pool::new(threads),
        ModelCache::at_dir(base.join("cache"), false),
    )
    .with_results_dir(base.join("results"))
    .with_fault_points(PointFaultPlan::parse(plan).expect("valid plan"))
}

fn cleanup(ctx: &Ctx) {
    if let Some(base) = ctx.results_dir.parent() {
        let _ = std::fs::remove_dir_all(base);
    }
}

/// Runs a cheap 6-point sweep and finishes an experiment around it.
fn run_sweep(ctx: &Ctx, label: &str) -> (Vec<Option<u64>>, bench::ExpResult) {
    let items: Vec<u64> = (0..6).collect();
    let slots = ctx.sweep(label, &items, |&x| x * 10 + 1);
    let mut csv = ctx.csv("sweep.csv", "x,y");
    for slot in slots.iter().flatten() {
        csv.row(format_args!("{},{}", slot / 10, slot));
    }
    let result = ctx.finish_experiment(csv);
    (slots, result)
}

fn csv_text(ctx: &Ctx) -> String {
    std::fs::read_to_string(ctx.results_dir.join("sweep.csv")).expect("csv written")
}

#[test]
fn panic_point_costs_that_point_and_marks_the_csv_partial() {
    let ctx = tmp_ctx("panic", 3, "panic@lab:sweep@2");
    let (slots, result) = run_sweep(&ctx, "lab:sweep");

    // Only the faulted point is lost.
    assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 5);
    assert!(slots[2].is_none());

    // The experiment reports the degradation, naming the lost point.
    let err = result.expect_err("degraded run must error").to_string();
    assert!(err.contains("degraded"), "{err}");
    assert!(err.contains("lab:sweep[2]"), "{err}");

    // The CSV still holds every completed row, under a partial header.
    let text = csv_text(&ctx);
    assert!(text.starts_with("# partial: 5/6 points\n"), "{text}");
    assert_eq!(text.lines().count(), 2 + 5, "{text}");

    // The supervisor journalled the panic with its retry count.
    let reports = ctx.supervisor.drain();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].lost(), 1);
    assert_eq!(reports[0].failures[0].index, 2);
    assert!(reports[0].failures[0].panicked);
    assert_eq!(
        reports[0].failures[0].attempts,
        RetryPolicy::standard(0).max_attempts
    );
    cleanup(&ctx);
}

#[test]
fn transient_fault_recovers_via_retry_and_leaves_a_clean_csv() {
    let ctx = tmp_ctx("transient", 2, "transient@lab:sweep@4@2");
    let (slots, result) = run_sweep(&ctx, "lab:sweep");

    assert!(slots.iter().all(Option::is_some), "no point may be lost");
    result.expect("recovered run must succeed");
    let text = csv_text(&ctx);
    assert!(!text.starts_with('#'), "recovered CSV must not be partial");

    let reports = ctx.supervisor.drain();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].completed, 6);
    assert_eq!(reports[0].recovered, 1);
    assert_eq!(reports[0].retried_attempts, 2);
    assert!(reports[0].failures.is_empty());
    cleanup(&ctx);
}

#[test]
fn fatal_error_point_is_not_retried() {
    let ctx = tmp_ctx("fatal", 2, "error@lab:sweep@0");
    let (slots, result) = run_sweep(&ctx, "lab:sweep");

    assert!(slots[0].is_none());
    assert!(result.is_err());
    let reports = ctx.supervisor.drain();
    assert_eq!(reports[0].failures[0].attempts, 1, "fatal must not retry");
    assert!(!reports[0].failures[0].panicked);
    cleanup(&ctx);
}

#[test]
fn clean_sweeps_are_identical_at_any_thread_count_and_to_plain_par_map() {
    let items: Vec<u64> = (0..16).collect();
    let expected: Vec<u64> = items.iter().map(|&x| x * 10 + 1).collect();
    for threads in [1usize, 2, 8] {
        let ctx = tmp_ctx(&format!("clean{threads}"), threads, "");
        let slots = ctx.sweep("lab:sweep", &items, |&x| x * 10 + 1);
        let got: Vec<u64> = slots.into_iter().map(|s| s.expect("clean")).collect();
        assert_eq!(got, expected, "{threads} threads diverged");
        let reports = ctx.supervisor.drain();
        assert_eq!(reports[0].completed, 16);
        assert_eq!(reports[0].retried_attempts, 0);
        cleanup(&ctx);
    }
}

#[test]
fn faulted_runs_are_deterministic_across_repeats_and_thread_counts() {
    let plan = "panic@lab:sweep@1,transient@lab:sweep@3@1";
    let mut outputs = Vec::new();
    for (tag, threads) in [("d1", 1usize), ("d2", 4), ("d3", 4)] {
        let ctx = tmp_ctx(&format!("det-{tag}"), threads, plan);
        let (_, result) = run_sweep(&ctx, "lab:sweep");
        assert!(result.is_err());
        outputs.push(csv_text(&ctx));
        cleanup(&ctx);
    }
    assert_eq!(outputs[0], outputs[1], "thread count changed faulted CSV");
    assert_eq!(outputs[1], outputs[2], "faulted CSV not reproducible");
}

#[test]
fn sweeps_in_other_labels_are_untouched_by_the_plan() {
    let ctx = tmp_ctx("other", 2, "panic@other:sweep@0");
    let (slots, result) = run_sweep(&ctx, "lab:sweep");
    assert!(slots.iter().all(Option::is_some));
    result.expect("unfaulted label must run clean");
    cleanup(&ctx);
}
