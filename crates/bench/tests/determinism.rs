//! Determinism guarantees of the parallel sweep executor and the model
//! cache: worker count must never change a number, and a cache round-trip
//! (including through corruption) must reproduce cold-run values
//! bit-exactly.

use bench::cache::{CacheKey, ModelCache};
use bench::{model_cached, no_switch_config, no_switch_ipc_cached, Ctx, Scale};
use bp_common::pool::Pool;
use bp_pipeline::{SimConfig, Simulation};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

/// A context whose cache lives in a fresh temp directory.
fn tmp_ctx(tag: &str, threads: usize, enabled: bool) -> Ctx {
    let dir = std::env::temp_dir().join(format!("hybp-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Ctx::custom(
        Scale::Quick,
        Pool::new(threads),
        ModelCache::at_dir(dir, enabled),
    )
}

fn cleanup(ctx: &Ctx) {
    let _ = std::fs::remove_dir_all(ctx.cache.dir());
}

/// A short real simulation — heavy enough to exercise the whole stack,
/// light enough for a debug-mode test.
fn tiny_ipc(mech: Mechanism, bench: SpecBenchmark) -> f64 {
    Simulation::builder(mech, SimConfig::quick_test())
        .single_thread(bench)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
        .threads[0]
        .ipc()
}

#[test]
fn par_map_equals_serial_map_for_1_2_8_workers() {
    let benches = [
        SpecBenchmark::Deepsjeng,
        SpecBenchmark::Xz,
        SpecBenchmark::Wrf,
        SpecBenchmark::Mcf,
    ];
    let serial: Vec<f64> = benches
        .iter()
        .map(|&b| tiny_ipc(Mechanism::Baseline, b))
        .collect();
    for workers in [1usize, 2, 8] {
        let parallel = Pool::new(workers).par_map(&benches, |&b| tiny_ipc(Mechanism::Baseline, b));
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "par_map with {workers} workers diverged from the serial map"
        );
    }
}

#[test]
fn par_map_output_is_input_ordered_not_completion_ordered() {
    // Items with wildly uneven costs: completion order differs from input
    // order, output must not.
    let pool = Pool::new(4);
    let got = pool.par_map_indices(16, |i| {
        if i % 4 == 0 {
            // Staged uneven timing so completion order differs from input
            // order; not a hot-path block.
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        i * 3
    });
    assert_eq!(got, (0..16).map(|i| i * 3).collect::<Vec<_>>());
}

#[test]
fn cache_round_trip_reproduces_cold_run_bits() {
    let ctx = tmp_ctx("roundtrip", 1, true);
    let mech = Mechanism::hybp_default();
    let bench = SpecBenchmark::Xalancbmk;
    let key = CacheKey::new("test_ipc")
        .with("mech", format_args!("{mech:?}"))
        .with("bench", format_args!("{bench:?}"));

    // Cold run: computes and writes the entry.
    let cold = ctx.cache.get_or_compute_one(&key, || tiny_ipc(mech, bench));
    assert_eq!(ctx.cache.stats().misses, 1);

    // Warm reload must be a hit and bit-identical.
    let warm = ctx
        .cache
        .get_or_compute_one(&key, || panic!("warm lookup must not recompute"));
    assert_eq!(cold.to_bits(), warm.to_bits());
    assert_eq!(ctx.cache.stats().hits, 1);

    // Corrupt every cache file, then reload: must recompute and land on
    // the exact cold-run value again — a bad cache file means recompute,
    // never a wrong number.
    for entry in std::fs::read_dir(ctx.cache.dir()).unwrap() {
        std::fs::write(entry.unwrap().path(), b"\x00garbage\xff").unwrap();
    }
    let recomputed = ctx.cache.get_or_compute_one(&key, || tiny_ipc(mech, bench));
    assert_eq!(cold.to_bits(), recomputed.to_bits());
    assert_eq!(ctx.cache.stats().misses, 2);
    cleanup(&ctx);
}

#[test]
fn cached_model_matches_uncached_model_bitwise() {
    let ctx = tmp_ctx("model", 2, true);
    let mech = Mechanism::Baseline;
    let bench = SpecBenchmark::Exchange2;
    // The plain (uncached) IPC point and the cached one must agree on a
    // cold cache, and again on a warm one.
    let direct = Simulation::builder(mech, no_switch_config(ctx.scale))
        .single_thread(bench)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
        .threads[0]
        .ipc();
    let cold = no_switch_ipc_cached(&ctx, mech, bench);
    let warm = no_switch_ipc_cached(&ctx, mech, bench);
    assert_eq!(direct.to_bits(), cold.to_bits());
    assert_eq!(cold.to_bits(), warm.to_bits());
    let stats = ctx.cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    cleanup(&ctx);
}

#[test]
fn overhead_model_survives_cache_and_thread_count() {
    let ctx1 = tmp_ctx("model-t1", 1, true);
    let m_cold = model_cached(&ctx1, Mechanism::Baseline, SpecBenchmark::Lbm);
    let m_warm = model_cached(&ctx1, Mechanism::Baseline, SpecBenchmark::Lbm);
    assert_eq!(m_cold.ipc_fixed.to_bits(), m_warm.ipc_fixed.to_bits());
    assert_eq!(
        m_cold.per_switch_cycles.to_bits(),
        m_warm.per_switch_cycles.to_bits()
    );

    let ctx8 = tmp_ctx("model-t8", 8, true);
    let m8 = model_cached(&ctx8, Mechanism::Baseline, SpecBenchmark::Lbm);
    assert_eq!(m_cold.ipc_fixed.to_bits(), m8.ipc_fixed.to_bits());
    assert_eq!(
        m_cold.per_switch_cycles.to_bits(),
        m8.per_switch_cycles.to_bits()
    );
    cleanup(&ctx1);
    cleanup(&ctx8);
}

/// Golden guarantee for the telemetry export: a fixed-seed fig5 subset
/// run produces *byte-identical* JSONL at 1 and 4 worker threads. Events
/// are stamped with virtual cycles and the flush sorts by full content,
/// so worker scheduling must be invisible in the bytes.
#[test]
fn telemetry_jsonl_is_byte_identical_across_thread_counts() {
    let benches = [SpecBenchmark::Mcf, SpecBenchmark::Xz];
    let mut exports = Vec::new();
    for threads in [1usize, 4] {
        let base = std::env::temp_dir().join(format!(
            "hybp-telemetry-golden-t{threads}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let ctx = Ctx::custom(
            Scale::Quick,
            Pool::new(threads),
            ModelCache::at_dir(base.join("cache"), false),
        )
        .with_results_dir(base.join("results"))
        .with_telemetry_dir(base.join("telemetry"));
        bench::experiments::fig5::run_with_benches(&ctx, &benches).expect("fig5 subset runs clean");
        let text = std::fs::read_to_string(base.join("telemetry").join("fig5_hybp_per_app.jsonl"))
            .expect("telemetry JSONL written");
        assert!(!text.is_empty(), "export must carry at least one event");
        for line in text.lines() {
            bp_common::telemetry::parse_jsonl_line(line).expect("schema-valid line");
        }
        exports.push(text);
        let _ = std::fs::remove_dir_all(&base);
    }
    assert_eq!(
        exports[0], exports[1],
        "telemetry export must not depend on the worker count"
    );
}

#[test]
fn disabled_cache_still_computes_correctly() {
    let ctx = tmp_ctx("disabled", 2, false);
    let a = no_switch_ipc_cached(&ctx, Mechanism::Baseline, SpecBenchmark::Roms);
    let b = no_switch_ipc_cached(&ctx, Mechanism::Baseline, SpecBenchmark::Roms);
    assert_eq!(a.to_bits(), b.to_bits());
    assert_eq!(ctx.cache.stats().hits, 0);
    assert!(!ctx.cache.dir().exists());
}
