//! §VI-D proof-of-concept: malicious training of BTB and PHT, baseline vs
//! HyBP, with the paper's iteration/threshold protocol.
//!
//! `--scale full` runs the paper's 10 000 iterations.

use crate::{Ctx, ExpResult, Scale};
use bp_attacks::poc::{btb_training_topo, pht_training_topo, CoResidency, PocParams};
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    let params = match ctx.scale {
        Scale::Quick => PocParams {
            iterations: 100,
            rounds_per_iteration: 100,
            success_threshold: 90,
            trainings_per_round: 8,
        },
        Scale::Default => PocParams {
            iterations: 1_000,
            rounds_per_iteration: 100,
            success_threshold: 90,
            trainings_per_round: 8,
        },
        Scale::Full => PocParams::paper(),
    };
    let mut csv = ctx.csv(
        "sec6_poc_training.csv",
        "unit,mechanism,training_accuracy,iteration_success_rate",
    );
    println!(
        "§VI-D PoC: {} iterations x {} rounds, success at ≥{} trained rounds",
        params.iterations, params.rounds_per_iteration, params.success_threshold
    );
    println!(
        "{:<5} {:<10} {:>18} {:>24}",
        "unit", "mechanism", "training accuracy", "iteration success rate"
    );
    // The paper's PoC topology: attacker and victim time-share one core.
    let targets = [
        ("Baseline", Mechanism::Baseline),
        ("HyBP", Mechanism::hybp_default()),
    ];
    // Supervised sweep: each (mechanism, unit) campaign is one task.
    let mut jobs: Vec<(usize, bool)> = Vec::new();
    for mi in 0..targets.len() {
        for is_pht in [false, true] {
            jobs.push((mi, is_pht));
        }
    }
    let outcomes = ctx.sweep("sec6_poc_training:grid", &jobs, |&(mi, is_pht)| {
        let mech = targets[mi].1;
        if is_pht {
            pht_training_topo(mech, CoResidency::SingleCore, params, 5)
        } else {
            btb_training_topo(mech, CoResidency::SingleCore, params, 3)
        }
    });
    for (mi, (name, _)) in targets.iter().enumerate() {
        let (Some(btb), Some(pht)) = (&outcomes[mi * 2], &outcomes[mi * 2 + 1]) else {
            continue;
        };
        println!(
            "{:<5} {:<10} {:>17.1}% {:>23.1}%",
            "BTB",
            name,
            btb.training_accuracy() * 100.0,
            btb.success_rate() * 100.0
        );
        println!(
            "{:<5} {:<10} {:>17.1}% {:>23.1}%",
            "PHT",
            name,
            pht.training_accuracy() * 100.0,
            pht.success_rate() * 100.0
        );
        csv.row(format_args!(
            "BTB,{},{:.4},{:.4}",
            name,
            btb.training_accuracy(),
            btb.success_rate()
        ));
        csv.row(format_args!(
            "PHT,{},{:.4},{:.4}",
            name,
            pht.training_accuracy(),
            pht.success_rate()
        ));
    }
    println!();
    println!("(paper, on a plain-TAGE FPGA platform: baseline 96.5% BTB / 97.2% PHT;");
    println!(" < 1% under the hybrid protection. Our baseline PHT number is lower because");
    println!(" TAGE-SC-L's corrector partially resists training — see EXPERIMENTS.md.)");
    ctx.finish_experiment(csv)
}
