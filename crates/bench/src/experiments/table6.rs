//! Table VI: HyBP performance overhead as the randomized index keys table
//! grows from 1K to 32K entries, at 4M- and 16M-cycle context-switch
//! intervals. Bigger tables take longer to refresh, so branches run on
//! stale keys (pure accuracy cost) for longer after each switch.

use crate::{all_benchmarks, degradation, ipc_at_cached, model_cached, Ctx, ExpResult};
use hybp::{HybpConfig, Mechanism};

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "table6_keys_table_sensitivity.csv",
        "keys_entries,interval_cycles,avg_overhead",
    );
    let sizes = [1024usize, 2048, 4096, 16 * 1024, 32 * 1024];
    let intervals = [4_000_000u64, 16_000_000];
    // A representative benchmark subset keeps the run laptop-sized; the
    // effect being measured (stale-key window length) is workload-light.
    let benches: Vec<_> = all_benchmarks()[..6].to_vec();
    println!("Table VI: overhead vs randomized index keys table size");
    println!(
        "{:>9} {:>12} {:>12}",
        "entries", "4M interval", "16M interval"
    );
    // Parallel phase: one model per (size, benchmark), plus the shared
    // baseline models; modeled interval points are then pure arithmetic.
    let base_models = ctx.sweep("table6:base-models", &benches, |&b| {
        model_cached(ctx, Mechanism::Baseline, b)
    });
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for (si, _) in sizes.iter().enumerate() {
        for (bi, _) in benches.iter().enumerate() {
            jobs.push((si, bi));
        }
    }
    let models = ctx.sweep("table6:grid", &jobs, |&(si, bi)| {
        let mech = Mechanism::HyBp(HybpConfig::with_keys_entries(sizes[si]));
        model_cached(ctx, mech, benches[bi])
    });
    for (si, &entries) in sizes.iter().enumerate() {
        let mech = Mechanism::HyBp(HybpConfig::with_keys_entries(entries));
        print!("{:>9}", entries);
        for &interval in &intervals {
            // A benchmark contributes only when both its baseline and
            // HyBP models completed.
            let mut losses = Vec::new();
            for (bi, &bench) in benches.iter().enumerate() {
                let (Some(base_model), Some(model)) =
                    (&base_models[bi], &models[si * benches.len() + bi])
                else {
                    continue;
                };
                let (b, _) = ipc_at_cached(ctx, Mechanism::Baseline, bench, interval, base_model);
                let (h, _) = ipc_at_cached(ctx, mech, bench, interval, model);
                losses.push(degradation(h, b));
            }
            if losses.is_empty() {
                print!(" {:>12}", "n/a");
                continue;
            }
            let avg = losses.iter().sum::<f64>() / losses.len() as f64;
            print!(" {:>11.2}%", avg * 100.0);
            csv.row(format_args!("{},{},{:.5}", entries, interval, avg));
        }
        println!();
    }
    println!();
    println!("(paper: 1.4%..1.9% at 4M and 0.5%..0.9% at 16M as tables grow 1K→32K)");
    ctx.finish_experiment(csv)
}
