//! Ablation: the upper-level filtering effect (§V-B).
//!
//! The paper's "surprising" claim: physically isolating L0/L1 doesn't just
//! protect those tables — it also *filters* the information flow into the
//! shared L2, multiplying contention-attack costs. This ablation compares
//! full HyBP against randomization-only (shared upper levels) on:
//!
//! * the share of victim BTB traffic absorbed by the upper levels (the
//!   paper's `m` factor),
//! * Algorithm 1's success rate,
//! * the malicious-training PoC.

use crate::{no_switch_config, CacheKey, Ctx, ExpResult, Scale};
use bp_attacks::poc::{btb_training, PocParams};
use bp_attacks::ppp::{campaign, PppParams};
use bp_pipeline::Simulation;
use bp_workloads::profile::SpecBenchmark;
use hybp::{HybpConfig, Mechanism};

pub fn run(ctx: &Ctx) -> ExpResult {
    let runs = match ctx.scale {
        Scale::Quick => 6,
        Scale::Default => 16,
        Scale::Full => 48,
    };
    let mut csv = ctx.csv(
        "ablation_filtering.csv",
        "variant,upper_hit_share,ppp_success,btb_training_accuracy",
    );
    println!("Filtering ablation: full HyBP vs randomization-only");
    println!(
        "{:<22} {:>16} {:>12} {:>18}",
        "variant", "L0/L1 hit share", "PPP success", "training accuracy"
    );
    let variants = [
        ("HyBP (full)", HybpConfig::paper_default()),
        ("randomization-only", HybpConfig::randomization_only()),
    ];
    // Supervised sweep: each variant's workload run + attack campaigns.
    let rows: Vec<Option<(f64, u32, u32, f64)>> =
        ctx.sweep("ablation_filtering:variants", &variants, |&(_, cfg)| {
            let mech = Mechanism::HyBp(cfg);
            // Upper-level filtering measured on a real workload: the fraction of
            // BTB hits served by L0/L1 is the traffic the shared L2 never sees.
            // Needs the BTB hit breakdown, so it caches its own point rather
            // than going through `st_point_cached`.
            let key = CacheKey::new("upper_share")
                .with("mech", format_args!("{mech:?}"))
                .with("scale", format_args!("{}", ctx.scale.name()))
                .with("cfg", format_args!("{:?}", no_switch_config(ctx.scale)));
            let upper_share = ctx.cache.get_or_compute_one(&key, || {
                let sink = ctx.telemetry.sink();
                let m = Simulation::builder(mech, no_switch_config(ctx.scale))
                    .single_thread(SpecBenchmark::Xz)
                    .telemetry(sink.clone())
                    .build()
                    // bp-lint: allow(panic-freedom) reason="sweep boundary: configs here are built from validated presets, and the supervised sweep records a panic as a point failure"
                    .expect("valid config")
                    .run()
                    // bp-lint: allow(panic-freedom) reason="sweep boundary: a failed run is a programming error the supervised sweep records as a point failure"
                    .expect("simulation completes")
                    .bpu;
                ctx.telemetry.absorb(&sink);
                let upper = (m.btb_hits[0] + m.btb_hits[1]) as f64;
                let total = upper + m.btb_hits[2] as f64 + m.btb_misses as f64;
                upper / total
            });
            let ppp = campaign(mech, &PppParams::quick(), runs, 9);
            let poc = btb_training(mech, PocParams::quick(), 31);
            (
                upper_share,
                ppp.successes,
                ppp.runs,
                poc.training_accuracy(),
            )
        });
    for ((name, _), slot) in variants.iter().zip(&rows) {
        let Some((upper_share, successes, ppp_runs, training)) = *slot else {
            continue;
        };
        println!(
            "{:<22} {:>15.1}% {:>9}/{:<3} {:>17.1}%",
            name,
            upper_share * 100.0,
            successes,
            ppp_runs,
            training * 100.0
        );
        csv.row(format_args!(
            "{},{:.4},{:.4},{:.4}",
            name,
            upper_share,
            f64::from(successes) / f64::from(ppp_runs),
            training
        ));
    }
    println!();
    println!("Full HyBP should show a high upper-level hit share (the m filter) and the");
    println!("lowest attack rates; randomization-only loses the filter and the training");
    println!("protection for anything resident in the shared upper levels.");
    ctx.finish_experiment(csv)
}
