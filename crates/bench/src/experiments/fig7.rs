//! Figure 7: throughput (a) and Hmean fairness (b) degradation of the
//! isolation mechanisms on an SMT-2 core, per Table V mix.

use std::collections::BTreeMap;

use crate::{
    degradation, no_switch_config, no_switch_ipc_cached, smt_point_cached, Ctx, ExpResult,
};
use bp_workloads::profile::SpecBenchmark;
use bp_workloads::TABLE_V_MIXES;
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "fig7_smt_mixes.csv",
        "mix,class,mechanism,throughput_degradation,hmean_degradation",
    );
    let mechanisms = [
        Mechanism::Baseline,
        Mechanism::Partition,
        Mechanism::replication_default(),
        Mechanism::hybp_default(),
    ];

    // Parallel phase 1: solo IPC per (mechanism, benchmark) — the
    // fairness reference points, each needed by several mixes.
    let mut solo_jobs: Vec<(Mechanism, SpecBenchmark)> = Vec::new();
    for mech in mechanisms {
        for mix in TABLE_V_MIXES {
            for &b in &mix.pair {
                if !solo_jobs
                    .iter()
                    .any(|(m, jb)| m.to_string() == mech.to_string() && *jb == b)
                {
                    solo_jobs.push((mech, b));
                }
            }
        }
    }
    let solo_ipcs = ctx.sweep("fig7:solo", &solo_jobs, |&(mech, b)| {
        no_switch_ipc_cached(ctx, mech, b)
    });
    // Lost points simply never enter the map; downstream lookups treat an
    // absent key as "skip this mix/mechanism".
    let solo: BTreeMap<(String, SpecBenchmark), f64> = solo_jobs
        .iter()
        .zip(&solo_ipcs)
        .filter_map(|(&(mech, b), ipc)| ipc.map(|ipc| ((mech.to_string(), b), ipc)))
        .collect();

    // Supervised sweep 2: one point per (mix, mechanism) SMT run.
    let mut smt_jobs: Vec<(usize, Mechanism)> = Vec::new();
    for (mi, _) in TABLE_V_MIXES.iter().enumerate() {
        for mech in mechanisms {
            smt_jobs.push((mi, mech));
        }
    }
    let smt_points: Vec<Option<(f64, Vec<f64>)>> =
        ctx.sweep("fig7:smt", &smt_jobs, |&(mi, mech)| {
            smt_point_cached(
                ctx,
                mech,
                TABLE_V_MIXES[mi].pair,
                no_switch_config(ctx.scale),
            )
        });
    let smt: BTreeMap<(usize, String), &(f64, Vec<f64>)> = smt_jobs
        .iter()
        .zip(&smt_points)
        .filter_map(|(&(mi, mech), point)| {
            point.as_ref().map(|point| ((mi, mech.to_string()), point))
        })
        .collect();

    // Serial aggregation, in mix order.
    println!("Figure 7: SMT throughput and Hmean fairness degradation per mix");
    println!(
        "{:<28} {:<7} {:>22} {:>22}",
        "mix", "class", "throughput degradation", "hmean degradation"
    );
    let mut agg: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (mi, mix) in TABLE_V_MIXES.iter().enumerate() {
        let Some(base_point) = smt.get(&(mi, Mechanism::Baseline.to_string())) else {
            continue; // baseline SMT point lost: the whole mix is uncomputable
        };
        let (base_thr, base_ipcs) = (&base_point.0, &base_point.1);
        let Some(base_solo) = mix
            .pair
            .iter()
            .map(|&b| solo.get(&(Mechanism::Baseline.to_string(), b)).copied())
            .collect::<Option<Vec<f64>>>()
        else {
            continue; // a baseline solo reference was lost
        };
        let base_hmean = match bp_common::stats::hmean_fairness(base_ipcs, &base_solo) {
            Some(h) => h,
            None => {
                eprintln!(
                    "skipping mix {}: baseline fairness unavailable",
                    mix.label()
                );
                continue;
            }
        };
        for mech in mechanisms.iter().skip(1) {
            let Some(point) = smt.get(&(mi, mech.to_string())) else {
                continue; // this (mix, mechanism) SMT point was lost
            };
            let (thr, ipcs) = (&point.0, &point.1);
            let thr_deg = degradation(*thr, *base_thr);
            let Some(mech_solo) = mix
                .pair
                .iter()
                .map(|&b| solo.get(&(mech.to_string(), b)).copied())
                .collect::<Option<Vec<f64>>>()
            else {
                continue; // a solo reference for this mechanism was lost
            };
            let hmean = match bp_common::stats::hmean_fairness(ipcs, &mech_solo) {
                Some(h) => h,
                None => {
                    eprintln!(
                        "skipping {} on mix {}: fairness unavailable",
                        mech.name(),
                        mix.label()
                    );
                    continue;
                }
            };
            let hmean_deg = degradation(hmean, base_hmean);
            println!(
                "{:<28} {:<7} {:>11} ({:<9}) {:>11} ({:<9})",
                mix.label(),
                mix.class().to_string(),
                format!("{:+.2}%", thr_deg * 100.0),
                mech.name(),
                format!("{:+.2}%", hmean_deg * 100.0),
                mech.name()
            );
            csv.row(format_args!(
                "{},{},{},{:.5},{:.5}",
                mix,
                mix.class(),
                mech,
                thr_deg,
                hmean_deg
            ));
            let e = agg.entry(mech.to_string()).or_default();
            e.0.push(thr_deg);
            e.1.push(hmean_deg);
        }
    }
    println!();
    for mech in mechanisms.iter().skip(1) {
        let Some((thr, hm)) = agg.get(&mech.to_string()) else {
            continue; // every mix for this mechanism was lost
        };
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &Vec<f64>| v.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "{:<22} avg throughput loss {:>6.2}% (max {:>6.2}%), avg hmean loss {:>6.2}% (max {:>6.2}%)",
            mech.to_string(),
            mean(thr) * 100.0,
            max(thr) * 100.0,
            mean(hm) * 100.0,
            max(hm) * 100.0
        );
        csv.row(format_args!(
            "average,,{},{:.5},{:.5}",
            mech,
            mean(thr),
            mean(hm)
        ));
    }
    println!();
    println!("(paper: HyBP avg 0.2% / max 3.8% throughput loss vs Partition avg 4.4% /");
    println!(" max 12.6%; Partition Hmean up to ~17% on H-ILP mixes, HyBP ≤ 2.3%)");
    ctx.finish_experiment(csv)
}
