//! §VI security analysis numbers: PPP campaign (Algorithm 1), blind
//! contention (Equation 1), PHT reuse cost (Equation 2), GEM re-key bound,
//! and the linear-cipher break.

use crate::{Ctx, ExpResult, Scale};
use bp_attacks::linear::break_affine;
use bp_attacks::ppp::{campaign, PppParams};
use bp_attacks::{blind, gem, pht_analysis};
use bp_crypto::{Llbc, Qarma64};
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    let runs = match ctx.scale {
        Scale::Quick => 8,
        Scale::Default => 24,
        Scale::Full => 100,
    };
    let mut csv = ctx.csv("sec6_attack_costs.csv", "experiment,quantity,value");

    println!("=== Algorithm 1 (PPP-style eviction-set construction) ===");
    let params = PppParams::quick();
    let scaling_bits = (1024.0 / params.subsets as f64).log2();
    let ppp_targets = [
        ("Baseline", Mechanism::Baseline),
        ("HyBP", Mechanism::hybp_default()),
    ];
    // Supervised sweep: one campaign per mechanism.
    let campaigns = ctx.sweep("sec6_attack_costs:ppp", &ppp_targets, |&(_, mech)| {
        campaign(mech, &params, runs, 11)
    });
    for ((name, _), slot) in ppp_targets.iter().zip(&campaigns) {
        let Some(c) = slot else { continue };
        let per_run = c.total_accesses as f64 / f64::from(c.runs);
        let cost = c.expected_accesses_to_success();
        let cost_str = if cost.is_finite() {
            format!(
                "{:.2e} to success (2^{:.1} + {scaling_bits:.0} geometry bits)",
                cost,
                cost.log2()
            )
        } else {
            // Censored: no success observed — the campaign total is a lower
            // bound on the cost.
            format!(
                "> {:.2e} (censored; 2^{:.1}+)",
                c.total_accesses as f64,
                (c.total_accesses as f64).log2()
            )
        };
        println!(
            "{name:<9} success {:>2}/{:<3} ({:>5.1}%), {:>10.0} accesses/run, extrapolated {}",
            c.successes,
            c.runs,
            c.success_rate() * 100.0,
            per_run,
            cost_str
        );
        csv.row(format_args!(
            "ppp_{name},success_rate,{:.4}",
            c.success_rate()
        ));
        csv.row(format_args!(
            "ppp_{name},accesses_per_run_log2,{:.2}",
            per_run.log2()
        ));
    }
    println!("(paper: ~1% success per attempt under HyBP, ≈ 2^27 accesses to one expected");
    println!(
        " success; our runs sample {} of 1024 candidate subsets, so the full-geometry",
        params.subsets
    );
    println!(" cost adds ≈ {scaling_bits:.0} bits on top of the extrapolation)");
    println!();

    println!("=== Blind contention (Equation 1) ===");
    let p_1140 = blind::valid_conflict_probability(1140, 1024, 7);
    let (n_opt, p_opt) = blind::optimal_n(1024, 7);
    let hybrid = blind::expected_accesses_hybrid(1140, 1024, 7, 16, 512);
    let mc = blind::monte_carlo_conflict_probability(1140, 1024, 7, 20_000, 7);
    println!(
        "P(n=1140, S=1024, W=7)          = {:.4}  (paper: ≈ 0.12)",
        p_1140
    );
    println!(
        "literal optimum of Eq.(1)        = {:.4} at n = {}",
        p_opt, n_opt
    );
    println!("Monte Carlo check of P(1140)     = {:.4}", mc);
    println!(
        "hybrid cost n·L0·L1/P            = {:.3e} accesses (2^{:.1}; paper: ≥ 2^28)",
        hybrid,
        hybrid.log2()
    );
    let secret32 = blind::multi_bit_success(p_1140, 32);
    println!(
        "32-bit secret success            = {:.2e} (paper: < 1e-6)",
        secret32
    );
    csv.row(format_args!("blind,P_1140,{:.5}", p_1140));
    csv.row(format_args!(
        "blind,hybrid_accesses_log2,{:.2}",
        hybrid.log2()
    ));
    csv.row(format_args!("blind,secret32_success,{:.3e}", secret32));
    println!();

    println!("=== PHT reuse cost (Equation 2) ===");
    let paper = pht_analysis::PhtAttackParams::paper();
    println!(
        "2^(I+T)·(2^C+2^U+1) with (13,12,2,1) = 2^{:.2} accesses (paper: ≈ 2^28)",
        paper.log2_accesses()
    );
    csv.row(format_args!(
        "pht_eq2,log2_accesses,{:.2}",
        paper.log2_accesses()
    ));
    println!();

    println!("=== GEM re-key bound (§III-C) ===");
    let est = gem::rekey_interval_estimate(7 * 1024);
    println!(
        "randomization-only re-key interval ≈ {est} accesses (2^{:.1}; paper: ≈ 2^16)",
        (est as f64).log2()
    );
    csv.row(format_args!(
        "gem,rekey_accesses_log2,{:.2}",
        (est as f64).log2()
    ));
    println!();

    println!("=== Jump-over-ASLR set inference (§VI-A2 contention) ===");
    {
        use bp_attacks::contention::set_inference;
        let trials = match ctx.scale {
            Scale::Quick => 10,
            Scale::Default => 30,
            Scale::Full => 100,
        };
        let targets = [
            ("Baseline", Mechanism::Baseline),
            ("HyBP", Mechanism::hybp_default()),
        ];
        // Supervised sweep: one inference campaign per mechanism.
        let results = ctx.sweep("sec6_attack_costs:jump-aslr", &targets, |&(_, mech)| {
            set_inference(mech, trials, 16, 21)
        });
        for ((name, _), slot) in targets.iter().zip(&results) {
            let Some(r) = slot else { continue };
            println!(
                "{name:<9} recovers the victim's set in {:>5.1}% of trials (signal rate {:>5.1}%)",
                r.accuracy() * 100.0,
                r.signal_rate() * 100.0
            );
            csv.row(format_args!(
                "jump_aslr_{name},inference_accuracy,{:.4}",
                r.accuracy()
            ));
        }
        println!("(paper: without the victim's key the attacker can no longer infer the");
        println!(" branch address from observed evictions)");
    }
    println!();

    println!("=== Linear cipher break (§III-A) ===");
    let llbc_broken = break_affine(&Llbc::from_seed(5), 0, 200, 1).is_some();
    let qarma_broken = break_affine(&Qarma64::from_seed(5), 0, 200, 2).is_some();
    println!(
        "LLBC affine-model recovery (65 queries): {}",
        if llbc_broken { "BROKEN" } else { "resisted" }
    );
    println!(
        "QARMA-64 affine-model recovery:          {}",
        if qarma_broken { "BROKEN" } else { "resisted" }
    );
    csv.row(format_args!("linear,llbc_broken,{}", llbc_broken));
    csv.row(format_args!("linear,qarma_broken,{}", qarma_broken));

    println!();
    ctx.finish_experiment(csv)
}
