//! Every paper experiment as a callable library function.
//!
//! Each submodule holds the body of one experiment binary
//! (`crates/bench/src/bin/` keeps a thin `main` per experiment for
//! direct invocation); the [`all`] registry is what the `bench_all`
//! driver iterates so the whole suite runs in one process with a shared
//! worker pool and a shared model cache.
//!
//! Every body follows the same determinism discipline: the sweep grid is
//! fanned out with the context's order-preserving
//! [`bp_common::pool::Pool::par_map`], and all aggregation and CSV/stdout
//! emission happens serially afterwards in input order — so output is
//! byte-identical for any `--threads` value.

pub mod ablation_ciphers;
pub mod ablation_filtering;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod sec6_attack_costs;
pub mod sec6_poc_training;
pub mod sec7f;
pub mod sec_fault_matrix;
pub mod serve_soak;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table6;

use crate::{Ctx, ExpResult};

/// One registered experiment.
pub struct Experiment {
    /// Binary / registry name.
    pub name: &'static str,
    /// CSV the experiment must produce under `results/`, when it has one.
    pub csv: Option<&'static str>,
    /// The experiment body.
    pub run: fn(&Ctx) -> ExpResult,
}

/// The full suite, in the order `bench_all` runs it. Cheap experiments
/// that seed the cache with widely shared points (baseline models,
/// no-switch IPCs) come first so later experiments hit warm entries even
/// on a cold cache.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1_comparison",
            csv: Some("table1_comparison.csv"),
            run: table1::run,
        },
        Experiment {
            name: "table2_threat_model",
            csv: None,
            run: table2::run,
        },
        Experiment {
            name: "table3_security_matrix",
            csv: Some("table3_security_matrix.csv"),
            run: table3::run,
        },
        Experiment {
            name: "table6_keys_table_sensitivity",
            csv: Some("table6_keys_table_sensitivity.csv"),
            run: table6::run,
        },
        Experiment {
            name: "fig2_pipeline_latency",
            csv: Some("fig2_pipeline_latency.csv"),
            run: fig2::run,
        },
        Experiment {
            name: "fig5_hybp_per_app",
            csv: Some("fig5_hybp_per_app.csv"),
            run: fig5::run,
        },
        Experiment {
            name: "fig6_switch_interval_sweep",
            csv: Some("fig6_switch_interval_sweep.csv"),
            run: fig6::run,
        },
        Experiment {
            name: "fig7_smt_mixes",
            csv: Some("fig7_smt_mixes.csv"),
            run: fig7::run,
        },
        Experiment {
            name: "fig8_replication_sweep",
            csv: Some("fig8_replication_sweep.csv"),
            run: fig8::run,
        },
        Experiment {
            name: "ablation_ciphers",
            csv: Some("ablation_ciphers.csv"),
            run: ablation_ciphers::run,
        },
        Experiment {
            name: "ablation_filtering",
            csv: Some("ablation_filtering.csv"),
            run: ablation_filtering::run,
        },
        Experiment {
            name: "sec6_attack_costs",
            csv: Some("sec6_attack_costs.csv"),
            run: sec6_attack_costs::run,
        },
        Experiment {
            name: "sec6_poc_training",
            csv: Some("sec6_poc_training.csv"),
            run: sec6_poc_training::run,
        },
        Experiment {
            name: "sec7f_tage_vs_tournament",
            csv: Some("sec7f_tage_vs_tournament.csv"),
            run: sec7f::run,
        },
        Experiment {
            name: "sec_fault_matrix",
            csv: Some("sec_fault_matrix.csv"),
            run: sec_fault_matrix::run,
        },
        Experiment {
            name: "serve_soak",
            csv: Some("serve_soak.csv"),
            run: serve_soak::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let exps = all();
        let mut names: Vec<_> = exps.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), exps.len());
    }

    #[test]
    fn registry_covers_the_whole_suite() {
        assert_eq!(all().len(), 16);
    }
}
