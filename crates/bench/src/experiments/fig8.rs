//! Figure 8: performance loss of the Replication mechanism as branch
//! predictor storage scales from +0% to +300%, against HyBP's fixed
//! (0.5% loss, 21.1% storage) point — the crossover the paper places at
//! ≈ +240%.

use crate::{degradation, no_switch_config, smt_point_cached, Ctx, ExpResult};
use bp_workloads::TABLE_V_MIXES;
use hybp::cost::mechanism_cost;
use hybp::Mechanism;

const SWEEP: [u32; 8] = [0, 40, 80, 120, 160, 200, 240, 300];

/// Average SMT throughput across the Table V mixes; the per-mix runs fan
/// out as one supervised sweep, averaged over completed mixes (`None`
/// when all were lost).
fn throughput(ctx: &Ctx, label: &str, mech: Mechanism) -> Option<f64> {
    let mixes: Vec<_> = TABLE_V_MIXES.to_vec();
    let thrs: Vec<f64> = ctx
        .sweep(label, &mixes, |mix| {
            smt_point_cached(ctx, mech, mix.pair, no_switch_config(ctx.scale)).0
        })
        .into_iter()
        .flatten()
        .collect();
    if thrs.is_empty() {
        None
    } else {
        Some(thrs.iter().sum::<f64>() / thrs.len() as f64)
    }
}

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "fig8_replication_sweep.csv",
        "mechanism,extra_storage_pct,perf_loss",
    );
    println!("Figure 8: Replication storage sweep vs HyBP (SMT-2, Table V mixes)");
    let (Some(baseline), Some(hybp_thr)) = (
        throughput(ctx, "fig8:smt:Baseline", Mechanism::Baseline),
        throughput(ctx, "fig8:smt:HyBP", Mechanism::hybp_default()),
    ) else {
        // No reference points — nothing downstream can be computed.
        return ctx.finish_experiment(csv);
    };
    let hybp_loss = degradation(hybp_thr, baseline);
    let hybp_cost = mechanism_cost(&Mechanism::hybp_default(), 2).overhead_fraction();
    println!(
        "HyBP reference point: {:.2}% loss at {:.1}% storage overhead",
        hybp_loss * 100.0,
        hybp_cost * 100.0
    );
    csv.row(format_args!(
        "HyBP,{:.1},{:.5}",
        hybp_cost * 100.0,
        hybp_loss
    ));
    println!("{:>14} {:>10}", "extra storage", "perf loss");
    // Parallel phase: the whole (storage point × mix) grid at once, then
    // per-point averages summed serially in mix order.
    let mut jobs: Vec<(u32, usize)> = Vec::new();
    for &pct in &SWEEP {
        for mi in 0..TABLE_V_MIXES.len() {
            jobs.push((pct, mi));
        }
    }
    let thrs = ctx.sweep("fig8:grid", &jobs, |&(pct, mi)| {
        let mech = Mechanism::Replication {
            extra_storage_pct: pct,
        };
        smt_point_cached(
            ctx,
            mech,
            TABLE_V_MIXES[mi].pair,
            no_switch_config(ctx.scale),
        )
        .0
    });
    let mut crossover: Option<u32> = None;
    for (k, &pct) in SWEEP.iter().enumerate() {
        let n = TABLE_V_MIXES.len();
        let done: Vec<f64> = thrs[k * n..(k + 1) * n].iter().flatten().copied().collect();
        if done.is_empty() {
            println!("{:>13}% {:>10}", pct, "n/a");
            continue;
        }
        let avg = done.iter().sum::<f64>() / done.len() as f64;
        let loss = degradation(avg, baseline);
        println!("{:>13}% {:>9.2}%", pct, loss * 100.0);
        csv.row(format_args!("Replication,{},{:.5}", pct, loss));
        if crossover.is_none() && loss <= hybp_loss {
            crossover = Some(pct);
        }
    }
    match crossover {
        Some(p) => println!("Replication matches HyBP's loss at ≈ +{p}% storage (paper: ≈ +240%)"),
        None => println!("Replication never reaches HyBP's loss within the sweep (paper: ≈ +240%)"),
    }
    ctx.finish_experiment(csv)
}
