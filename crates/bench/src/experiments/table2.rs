//! Table II: the threat-model classification matrix.

use crate::{Ctx, ExpResult};
use bp_attacks::threat_model::{table_ii, Scenario};

pub fn run(_ctx: &Ctx) -> ExpResult {
    println!("Table II: classification of threat models (✓ in scope, ○ not considered)");
    print!("{:<18}", "");
    for s in Scenario::ALL {
        print!(" {:>22}", s.to_string());
    }
    println!();
    for row in table_ii() {
        println!("{row}");
    }
    println!();
    println!("HyBP defends all in-scope combinations; same-thread/same-privilege attacks");
    println!("(e.g. Spectre V1) are out of scope per the paper's §IV argument.");
    Ok(())
}
