//! Table I: performance overhead, hardware cost and security coverage of
//! every defense mechanism, at the default Linux-time-slice context-switch
//! interval on an SMT-2 core.

use crate::{
    degradation, no_switch_config, smt_point_cached, st_point_cached, Ctx, ExpResult,
    DEFAULT_INTERVAL,
};
use bp_workloads::TABLE_V_MIXES;
use hybp::cost::mechanism_cost;
use hybp::Mechanism;

/// SMT throughput under `mech` across all Table V mixes (no-switch runs;
/// context-switch effects at 16M are folded in via the single-thread model
/// which the fig5/fig6 binaries quantify — at 16M they are < 1% for every
/// mechanism except via their fixed parts, which these runs capture).
/// The per-mix runs fan out as one supervised sweep; `None` when every
/// mix point was lost.
fn smt_throughput(ctx: &Ctx, label: &str, mech: Mechanism) -> Option<f64> {
    let mixes: Vec<_> = TABLE_V_MIXES.to_vec();
    let thrs: Vec<f64> = ctx
        .sweep(label, &mixes, |mix| {
            smt_point_cached(ctx, mech, mix.pair, no_switch_config(ctx.scale)).0
        })
        .into_iter()
        .flatten()
        .collect();
    if thrs.is_empty() {
        None
    } else {
        Some(thrs.iter().sum::<f64>() / thrs.len() as f64)
    }
}

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "table1_comparison.csv",
        "mechanism,perf_overhead,hw_cost_pct,single_thread_secure,smt_secure",
    );
    println!("Table I: comparison of security mechanisms (SMT-2, {DEFAULT_INTERVAL}-cycle slices)");
    println!(
        "{:<18} {:>10} {:>9} {:>14} {:>6}",
        "mechanism", "perf ovh", "hw cost", "single-thread", "SMT"
    );
    let Some(baseline_thr) = smt_throughput(ctx, "table1:smt:Baseline", Mechanism::Baseline) else {
        // No reference point — nothing downstream can be computed.
        return ctx.finish_experiment(csv);
    };
    let solo_thr = {
        // Disable-SMT: only the first member of each mix runs.
        let mixes: Vec<_> = TABLE_V_MIXES.to_vec();
        let thrs: Vec<f64> = ctx
            .sweep("table1:solo", &mixes, |mix| {
                st_point_cached(
                    ctx,
                    Mechanism::Baseline,
                    mix.pair[0],
                    no_switch_config(ctx.scale),
                )
                .0
            })
            .into_iter()
            .flatten()
            .collect();
        if thrs.is_empty() {
            None
        } else {
            Some(thrs.iter().sum::<f64>() / thrs.len() as f64)
        }
    };
    let rows: [(Mechanism, &str, &str); 5] = [
        (Mechanism::Flush, "yes", "NO"),
        (Mechanism::Partition, "yes", "yes"),
        (Mechanism::replication_default(), "yes", "yes"),
        (Mechanism::DisableSmt, "-", "yes"),
        (Mechanism::hybp_default(), "yes", "yes"),
    ];
    println!(
        "{:<18} {:>10} {:>9} {:>14} {:>6}   (baseline throughput {:.3})",
        "Baseline", "0.0%", "0%", "NO", "NO", baseline_thr
    );
    for (mech, st_sec, smt_sec) in rows {
        let thr = match mech {
            Mechanism::DisableSmt => solo_thr,
            m => smt_throughput(ctx, &format!("table1:smt:{}", m.name()), m),
        };
        let Some(thr) = thr else { continue };
        let overhead = degradation(thr, baseline_thr);
        let cost = mechanism_cost(&mech, 2);
        println!(
            "{:<18} {:>9.1}% {:>8.1}% {:>14} {:>6}",
            mech.to_string(),
            overhead * 100.0,
            cost.overhead_fraction() * 100.0,
            st_sec,
            smt_sec
        );
        csv.row(format_args!(
            "{},{:.4},{:.4},{},{}",
            mech,
            overhead,
            cost.overhead_fraction(),
            st_sec,
            smt_sec
        ));
    }
    println!();
    println!("(paper: Flush 5.1%/0, Partition 6.3%/0, Replication 2.1%/100%,");
    println!(" DisableSMT 18%/0, HyBP 0.5%/21.1%)");
    ctx.finish_experiment(csv)
}
