//! Figure 6: average performance degradation of Flush, Partition and HyBP
//! on a single-threaded core across context-switch intervals, with Flush's
//! loss decomposed into its context-switch and privilege-change parts.
//!
//! The decomposition runs Flush twice: once with privilege-change flushes
//! (the real mechanism) and once with kernel episodes disabled (isolating
//! the context-switch share).

use crate::{
    all_benchmarks, degradation, ipc_at_cached, model_cached, no_switch_config, st_point_cached,
    Csv, Ctx, ExpResult, INTERVALS,
};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "fig6_switch_interval_sweep.csv",
        "mechanism,interval_cycles,avg_degradation,method",
    );
    println!("Figure 6: average degradation vs context-switch interval (single-threaded core)");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "mechanism", "256K", "512K", "1M", "4M", "16M"
    );
    let mechanisms = [
        Mechanism::Flush,
        Mechanism::Partition,
        Mechanism::hybp_default(),
    ];
    let benches = all_benchmarks();
    for mech in mechanisms {
        // Supervised sweep: per-benchmark loss rows (baseline + mechanism
        // models, direct points at small intervals).
        let rows: Vec<Vec<(f64, &'static str)>> = ctx
            .sweep(&format!("fig6:{}", mech.name()), &benches, |&bench| {
                let base_model = model_cached(ctx, Mechanism::Baseline, bench);
                let mech_model = model_cached(ctx, mech, bench);
                INTERVALS
                    .iter()
                    .map(|&interval| {
                        let (b, _) =
                            ipc_at_cached(ctx, Mechanism::Baseline, bench, interval, &base_model);
                        let (m, method) = ipc_at_cached(ctx, mech, bench, interval, &mech_model);
                        (degradation(m, b), method)
                    })
                    .collect()
            })
            .into_iter()
            .flatten()
            .collect();
        print!("{:<12}", mech.to_string());
        for (k, &interval) in INTERVALS.iter().enumerate() {
            let losses: Vec<f64> = rows.iter().map(|r| r[k].0).collect();
            if losses.is_empty() {
                print!(" {:>9}", "n/a");
                continue;
            }
            let method = rows.last().map(|r| r[k].1).unwrap_or("model");
            let avg = losses.iter().sum::<f64>() / losses.len() as f64;
            print!(" {:>8.2}%", avg * 100.0);
            csv.row(format_args!("{},{},{:.5},{}", mech, interval, avg, method));
        }
        println!();
    }

    // Flush decomposition at the default interval: share attributable to
    // privilege-change flushing (timer kernel episodes) vs context switches.
    println!();
    println!("Flush decomposition (share of loss from privilege-change flushing):");
    decompose_flush(ctx, &mut csv);
    println!();
    println!("(paper at 16M: Flush 5.1%, Partition 6.3%, HyBP 0.5%; Partition worst cases");
    println!(" fotonik3d 18.2% / xz 19.4%)");
    ctx.finish_experiment(csv)
}

fn decompose_flush(ctx: &Ctx, csv: &mut Csv) {
    // At very large intervals Flush's remaining loss is purely the
    // privilege-change part; compare against a run with kernel episodes
    // pushed out of the measurement window.
    let benches = [
        SpecBenchmark::Deepsjeng,
        SpecBenchmark::Xz,
        SpecBenchmark::Wrf,
    ];
    let shares: Vec<Option<(f64, f64)>> = ctx.sweep("fig6:flush-decomp", &benches, |&bench| {
        let cfg = no_switch_config(ctx.scale);
        let base = st_point_cached(ctx, Mechanism::Baseline, bench, cfg).0;
        let flush = st_point_cached(ctx, Mechanism::Flush, bench, cfg).0;
        let mut no_kernel = cfg;
        no_kernel.kernel_timer_interval = u64::MAX / 4;
        let base_nk = st_point_cached(ctx, Mechanism::Baseline, bench, no_kernel).0;
        let flush_nk = st_point_cached(ctx, Mechanism::Flush, bench, no_kernel).0;
        let total = degradation(flush, base);
        let ctx_only = degradation(flush_nk, base_nk);
        let priv_share = if total > 1e-6 {
            ((total - ctx_only) / total).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (total, priv_share)
    });
    for (bench, slot) in benches.iter().zip(&shares) {
        let Some((total, priv_share)) = *slot else {
            continue;
        };
        println!(
            "  {:<14} total {:>6.2}%  privilege part {:>5.1}%",
            bench.name(),
            total * 100.0,
            priv_share * 100.0
        );
        csv.row(format_args!(
            "Flush-priv-share-{},{},{:.4},direct",
            bench.name(),
            u64::MAX / 4,
            priv_share
        ));
    }
}
