//! Robustness matrix: every protection mechanism under every fault class.
//!
//! For each (mechanism × fault class) pair this runs a clean and a faulted
//! simulation of the same configuration and reports whether the paper's
//! "stale keys cost accuracy, never correctness" claim holds under
//! adversarial disturbance: identical architectural branch streams, full
//! retirement, bounded direction-accuracy loss, and the fault actually
//! firing where it applies.

use crate::{Ctx, ExpResult, Scale};
use bp_faults::{FaultInjector, FaultPlan, FaultStats};
use bp_pipeline::{RunMetrics, SimConfig, Simulation};
use bp_workloads::profile::SpecBenchmark;
use hybp::{HybpConfig, Mechanism};

const BENCH: SpecBenchmark = SpecBenchmark::Deepsjeng;
const MAX_ACCURACY_LOSS: f64 = 0.25;

fn all_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::Flush,
        Mechanism::Partition,
        Mechanism::Replication {
            extra_storage_pct: 100,
        },
        Mechanism::DisableSmt,
        Mechanism::hybp_default(),
        Mechanism::HyBp(HybpConfig::randomization_only()),
        Mechanism::TournamentBaseline,
    ]
}

struct FaultClass {
    name: &'static str,
    hybp_only: bool,
    plan: fn() -> FaultPlan,
    fired: fn(&FaultStats) -> u64,
}

fn fault_classes() -> Vec<FaultClass> {
    vec![
        FaultClass {
            name: "sram-key-flips",
            hybp_only: true,
            plan: || FaultPlan::new(0xFA01).with_key_bit_flips(97),
            fired: |s| s.key_bit_flips,
        },
        FaultClass {
            name: "btb-payload-flips",
            hybp_only: false,
            plan: || FaultPlan::new(0xFA02).with_btb_target_flips(53),
            fired: |s| s.btb_target_flips,
        },
        FaultClass {
            name: "direction-flips",
            hybp_only: false,
            plan: || FaultPlan::new(0xFA03).with_direction_flips(101),
            fired: |s| s.direction_flips,
        },
        FaultClass {
            name: "refresh-disturbance",
            hybp_only: true,
            plan: || {
                FaultPlan::new(0xFA04)
                    .with_forced_context_switches(6_000)
                    .with_refresh_delays(2, 37)
                    .with_refresh_drops(3)
            },
            fired: |s| s.refreshes_delayed + s.refreshes_dropped,
        },
        FaultClass {
            name: "trace-anomalies",
            hybp_only: false,
            plan: || {
                FaultPlan::new(0xFA05)
                    .with_record_drops(211)
                    .with_record_duplicates(223)
            },
            fired: |s| s.records_dropped + s.records_duplicated,
        },
        FaultClass {
            name: "os-disturbance",
            hybp_only: false,
            plan: || {
                FaultPlan::new(0xFA06)
                    .with_forced_context_switches(7_000)
                    .with_forced_timers(5_000)
            },
            fired: |s| s.forced_context_switches + s.forced_timers,
        },
        FaultClass {
            name: "counter-saturation",
            hybp_only: true,
            plan: || FaultPlan::new(0xFA07).with_counter_saturation(5_000),
            fired: |s| s.counters_saturated,
        },
    ]
}

fn fault_cfg(scale: Scale) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = scale.warmup_instructions() / 4;
    cfg.measure_instructions = scale.fixed_instructions() / 4;
    cfg.ctx_switch_interval = 25_000;
    cfg
}

fn run_one(
    ctx: &Ctx,
    mech: Mechanism,
    cfg: SimConfig,
    plan: Option<FaultPlan>,
) -> (RunMetrics, FaultStats) {
    let injector = plan.map(FaultInjector::from_plan);
    let sink = ctx.telemetry.sink();
    let metrics = Simulation::builder(mech, cfg)
        .single_thread(BENCH)
        .fault_injector(injector.clone())
        .telemetry(sink.clone())
        .build()
        // bp-lint: allow(panic-freedom) reason="sweep boundary: configs here are built from validated presets, and the supervised sweep records a panic as a point failure"
        .expect("valid config")
        .run()
        // bp-lint: allow(panic-freedom) reason="sweep boundary: a failed run is a programming error the supervised sweep records as a point failure"
        .expect("simulation completes");
    ctx.telemetry.absorb(&sink);
    let stats = injector.map(|i| i.stats()).unwrap_or_default();
    (metrics, stats)
}

pub fn run(ctx: &Ctx) -> ExpResult {
    let cfg = fault_cfg(ctx.scale);
    let mut csv = ctx.csv(
        "sec_fault_matrix.csv",
        "fault_class,mechanism,streams_agree,retired_ok,clean_accuracy,faulted_accuracy,\
         accuracy_delta,faults_fired,verdict",
    );

    println!("Robustness matrix: accuracy under faults, correctness never ({BENCH:?})");
    println!(
        "{:<20} {:<22} {:>7} {:>7} {:>8} {:>7} {:>8}",
        "fault class", "mechanism", "clean%", "fault%", "delta", "fired", "verdict"
    );

    // Supervised phase 1: the clean reference run per mechanism.
    let mechanisms = all_mechanisms();
    let clean: Vec<Option<RunMetrics>> = ctx.sweep("sec_fault_matrix:clean", &mechanisms, |&m| {
        run_one(ctx, m, cfg, None).0
    });

    // Supervised phase 2: the full (fault class × mechanism) grid.
    let classes = fault_classes();
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for ci in 0..classes.len() {
        for mi in 0..mechanisms.len() {
            jobs.push((ci, mi));
        }
    }
    let faulted_runs: Vec<Option<(RunMetrics, FaultStats)>> =
        ctx.sweep("sec_fault_matrix:grid", &jobs, |&(ci, mi)| {
            run_one(ctx, mechanisms[mi], cfg, Some((classes[ci].plan)()))
        });

    let mut failures = 0u32;
    for (ci, class) in classes.iter().enumerate() {
        for (mi, mech) in mechanisms.iter().enumerate() {
            // A lost clean reference or faulted run drops the cell from the
            // matrix (reported as a sweep loss), not a verdict failure.
            let (Some(clean_run), Some((faulted, stats))) =
                (&clean[mi], &faulted_runs[ci * mechanisms.len() + mi])
            else {
                continue;
            };
            let agree = faulted.streams_agree_with(clean_run);
            let retired_ok = faulted
                .threads
                .iter()
                .all(|t| t.retired >= cfg.measure_instructions);
            let clean_acc = clean_run.bpu.direction_accuracy();
            let faulted_acc = faulted.bpu.direction_accuracy();
            let delta = faulted_acc - clean_acc;
            let fired = (class.fired)(stats);
            let applies = !class.hybp_only || matches!(mech, Mechanism::HyBp(_));
            let ok = agree
                && retired_ok
                && faulted_acc >= clean_acc - MAX_ACCURACY_LOSS
                && faulted_acc > 0.5
                && (!applies || fired > 0);
            if !ok {
                failures += 1;
            }
            println!(
                "{:<20} {:<22} {:>6.2}% {:>6.2}% {:>+7.2}% {:>7} {:>8}",
                class.name,
                mech.to_string(),
                clean_acc * 100.0,
                faulted_acc * 100.0,
                delta * 100.0,
                fired,
                if ok { "ok" } else { "FAIL" }
            );
            csv.row(format_args!(
                "{},{},{},{},{:.5},{:.5},{:+.5},{},{}",
                class.name,
                mech,
                agree,
                retired_ok,
                clean_acc,
                faulted_acc,
                delta,
                fired,
                if ok { "ok" } else { "fail" }
            ));
        }
        println!();
    }

    println!("(invariant: streams identical, quota retired, accuracy loss bounded by");
    println!(" {MAX_ACCURACY_LOSS} absolute — faults degrade prediction, never execution)");
    ctx.finish_experiment(csv)?;
    if failures > 0 {
        return Err(format!("{failures} matrix cells violated the robustness invariant").into());
    }
    Ok(())
}
