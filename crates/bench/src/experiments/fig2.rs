//! Figure 2: IPC loss when the front-end pipeline grows by +2/+4/+8 cycles
//! (the cost of putting an encryption engine on the prediction critical
//! path), per benchmark, with each benchmark's prediction accuracy.

use crate::{all_benchmarks, degradation, no_switch_config, pct, st_point_cached, Ctx, ExpResult};
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "fig2_pipeline_latency.csv",
        "benchmark,accuracy,loss_plus2,loss_plus4,loss_plus8",
    );
    println!("Figure 2: performance impact of extra front-end latency");
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>8}",
        "benchmark", "accuracy", "+2cyc", "+4cyc", "+8cyc"
    );
    let benches = all_benchmarks();
    // Supervised sweep: per-benchmark (accuracy, losses) tuples.
    let rows: Vec<Option<(f64, [f64; 3])>> = ctx.sweep("fig2:benches", &benches, |&bench| {
        let base_cfg = no_switch_config(ctx.scale);
        let (base_ipc, accuracy) = st_point_cached(ctx, Mechanism::Baseline, bench, base_cfg);
        let mut losses = [0.0f64; 3];
        for (k, extra) in [2u32, 4, 8].iter().enumerate() {
            let mut cfg = no_switch_config(ctx.scale);
            cfg.core.extra_frontend_cycles = *extra;
            let (ipc, _) = st_point_cached(ctx, Mechanism::Baseline, bench, cfg);
            losses[k] = degradation(ipc, base_ipc);
        }
        (accuracy, losses)
    });
    let mut avgs = [Vec::new(), Vec::new(), Vec::new()];
    for (bench, slot) in benches.iter().zip(&rows) {
        let Some((accuracy, losses)) = *slot else {
            continue;
        };
        for (k, loss) in losses.iter().enumerate() {
            avgs[k].push(*loss);
        }
        println!(
            "{:<14} {:>8.1}% {:>8} {:>8} {:>8}",
            bench.name(),
            accuracy * 100.0,
            pct(losses[0]),
            pct(losses[1]),
            pct(losses[2])
        );
        csv.row(format_args!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            bench.name(),
            accuracy,
            losses[0],
            losses[1],
            losses[2]
        ));
    }
    if !avgs[0].is_empty() {
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:<14} {:>9} {:>8} {:>8} {:>8}",
            "average",
            "",
            pct(mean(&avgs[0])),
            pct(mean(&avgs[1])),
            pct(mean(&avgs[2]))
        );
        csv.row(format_args!(
            "average,,{:.4},{:.4},{:.4}",
            mean(&avgs[0]),
            mean(&avgs[1]),
            mean(&avgs[2])
        ));
    }
    println!("(paper: up to 19.5% at +8 cycles; ~7.8% average at +8)");
    ctx.finish_experiment(csv)
}
