//! Table III: Defend / No-Protection matrix, derived by actually running
//! the PoC attacks against each mechanism on single-threaded and SMT
//! configurations.
//!
//! * BTB rows use the malicious-target-training PoC (reuse) and the
//!   PPP/eviction experiments (contention).
//! * PHT rows use the direction-training PoC (reuse); PHT contention is
//!   covered by the physically isolated base predictor argument, checked
//!   through the cross-thread training collapse.
//!
//! "Single-threaded core" attacks run across context switches (attacker and
//! victim time-share); "SMT" attacks run concurrently. A mechanism defends
//! when the attack's success collapses.

use crate::{Ctx, ExpResult};
use bp_attacks::poc::{btb_training_topo, pht_training_topo, CoResidency, PocParams};
use hybp::Mechanism;

/// Attack succeeds ⇒ "No Protection"; collapse ⇒ "Defend".
fn verdict(training_accuracy: f64) -> &'static str {
    if training_accuracy < 0.10 {
        "Defend"
    } else {
        "No Protection"
    }
}

pub fn run(ctx: &Ctx) -> ExpResult {
    let params = PocParams {
        iterations: 120,
        rounds_per_iteration: 60,
        success_threshold: 54,
        trainings_per_round: 8,
    };
    let mut csv = ctx.csv(
        "table3_security_matrix.csv",
        "unit,mechanism,topology,training_accuracy,verdict",
    );
    println!("Table III: protections summary (derived from live PoC runs)");
    println!(
        "{:<6} {:<20} {:>24} {:>24}",
        "unit", "mechanism", "single-threaded core", "SMT core"
    );
    let mechanisms = [
        ("Flush", Mechanism::Flush),
        ("Physical Isolation", Mechanism::Partition),
        ("HyBP", Mechanism::hybp_default()),
    ];
    // Parallel phase: the four PoC attacks per mechanism run as one task
    // each (unit × topology), 12 independent attack campaigns in total.
    let mut jobs: Vec<(usize, u8)> = Vec::new();
    for mi in 0..mechanisms.len() {
        for attack in 0..4u8 {
            jobs.push((mi, attack));
        }
    }
    let accuracies = ctx.sweep("table3:poc-grid", &jobs, |&(mi, attack)| {
        let mech = mechanisms[mi].1;
        match attack {
            0 => btb_training_topo(mech, CoResidency::SingleCore, params, 11).training_accuracy(),
            1 => btb_training_topo(mech, CoResidency::Smt, params, 12).training_accuracy(),
            2 => pht_training_topo(mech, CoResidency::SingleCore, params, 13).training_accuracy(),
            _ => pht_training_topo(mech, CoResidency::Smt, params, 14).training_accuracy(),
        }
    });
    for (mi, (name, _)) in mechanisms.iter().enumerate() {
        let acc = |attack: usize| accuracies[mi * 4 + attack];
        // A mechanism's verdict needs all four campaigns; skip rows whose
        // cells were lost rather than judging on partial evidence.
        let (Some(btb_st), Some(btb_smt), Some(pht_st), Some(pht_smt)) =
            (acc(0), acc(1), acc(2), acc(3))
        else {
            continue;
        };
        println!(
            "{:<6} {:<20} {:>14} ({:>5.1}%) {:>14} ({:>5.1}%)",
            "BTB",
            name,
            verdict(btb_st),
            btb_st * 100.0,
            verdict(btb_smt),
            btb_smt * 100.0
        );
        println!(
            "{:<6} {:<20} {:>14} ({:>5.1}%) {:>14} ({:>5.1}%)",
            "PHT",
            name,
            verdict(pht_st),
            pht_st * 100.0,
            verdict(pht_smt),
            pht_smt * 100.0
        );
        for (unit, topo, a) in [
            ("BTB", "single", btb_st),
            ("BTB", "smt", btb_smt),
            ("PHT", "single", pht_st),
            ("PHT", "smt", pht_smt),
        ] {
            csv.row(format_args!(
                "{},{},{},{:.4},{}",
                unit,
                name,
                topo,
                a,
                verdict(a)
            ));
        }
    }
    println!();
    println!("(paper Table III: Flush rows 'No Protection' under SMT; Physical Isolation");
    println!(" and HyBP defend everywhere)");
    ctx.finish_experiment(csv)
}
