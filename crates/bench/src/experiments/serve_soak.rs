//! Service-resilience soak: drives the supervised shard runtime of
//! `bp-serve` through the deterministic closed-loop workload and records
//! one CSV row per shard. Honors the context's `HYBP_FAULT_POINTS` plan,
//! so the fault-injected `bench_all` runs exercise shed/restart/degraded
//! paths; the clean suite run must come back fully Ready with exact
//! accounting, or the experiment fails.

use bp_serve::ServeTotals;

use crate::serve::{self, Mode};
use crate::{Ctx, ExpResult, Scale};

fn mode_for(scale: Scale) -> Mode {
    match scale {
        Scale::Quick => Mode::Quick,
        Scale::Default | Scale::Full => Mode::Full,
    }
}

pub fn run(ctx: &Ctx) -> ExpResult {
    let mode = mode_for(ctx.scale);
    let (report, soak) = serve::run_soak(mode, &ctx.fault_points, &ctx.pool, None)?;
    let mut csv = ctx.csv(
        "serve_soak.csv",
        "shard,health,submitted,answered,shed_overload,shed_deadline,shed_failed,lost,degraded_answers,degraded_windows,restarts,queue_depth_peak",
    );
    println!(
        "Service soak: {} requests over {} shards",
        soak.counters.requests,
        report.shards.len()
    );
    for s in &report.shards {
        println!(
            "  shard {}: {:?}, {} answered / {} submitted, shed {} (o {} / d {} / f {}), lost {}, restarts {}",
            s.shard,
            s.health,
            s.answered,
            s.submitted,
            s.shed(),
            s.shed_overload,
            s.shed_deadline,
            s.shed_failed,
            s.lost,
            s.restarts
        );
        csv.row(format_args!(
            "{},{:?},{},{},{},{},{},{},{},{},{},{}",
            s.shard,
            s.health,
            s.submitted,
            s.answered,
            s.shed_overload,
            s.shed_deadline,
            s.shed_failed,
            s.lost,
            s.degraded_answers,
            s.degraded_windows,
            s.restarts,
            s.queue_depth.peak()
        ));
    }
    let ServeTotals {
        answered,
        shed,
        lost,
        ..
    } = report.totals();
    println!(
        "  totals: {answered} answered, {shed} shed, {lost} lost, p99 {} cycles",
        soak.counters.p99_latency_cycles
    );
    if !report.readiness().is_ready() && ctx.fault_points.serve_faults().is_empty() {
        return Err(format!(
            "clean soak ended non-ready: {:?}",
            report.shards.iter().map(|s| s.health).collect::<Vec<_>>()
        )
        .into());
    }
    ctx.finish_experiment(csv)
}
