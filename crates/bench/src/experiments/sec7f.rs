//! §VII-F context: the performance value of modern branch prediction —
//! TAGE-SC-L versus a decades-old tournament predictor on the same core.
//! The paper quotes ≈ 5.4% in its setup, arguing that single-digit
//! protection overheads squander real generational gains.

use crate::{all_benchmarks, degradation, no_switch_config, st_point_cached, Ctx, ExpResult};
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "sec7f_tage_vs_tournament.csv",
        "benchmark,tage_ipc,tournament_ipc,tage_gain",
    );
    println!("§VII-F: TAGE-SC-L vs tournament predictor (unprotected baseline core)");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "benchmark", "TAGE IPC", "tourney IPC", "TAGE gain"
    );
    let benches = all_benchmarks();
    // Supervised sweep: both predictor runs per benchmark are one task.
    let rows: Vec<Option<(f64, f64)>> = ctx.sweep("sec7f:benches", &benches, |&bench| {
        let cfg = no_switch_config(ctx.scale);
        let tage = st_point_cached(ctx, Mechanism::Baseline, bench, cfg).0;
        let tourney = st_point_cached(ctx, Mechanism::TournamentBaseline, bench, cfg).0;
        (tage, tourney)
    });
    let mut gains = Vec::new();
    for (bench, slot) in benches.iter().zip(&rows) {
        let Some((tage, tourney)) = *slot else {
            continue;
        };
        let gain = -degradation(tage, tourney); // positive = TAGE faster
        gains.push(gain);
        println!(
            "{:<14} {:>10.3} {:>12.3} {:>9.2}%",
            bench.name(),
            tage,
            tourney,
            gain * 100.0
        );
        csv.row(format_args!(
            "{},{:.4},{:.4},{:.5}",
            bench.name(),
            tage,
            tourney,
            gain
        ));
    }
    if !gains.is_empty() {
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        println!(
            "{:<14} {:>10} {:>12} {:>9.2}%",
            "average",
            "",
            "",
            avg * 100.0
        );
        csv.row(format_args!("average,,,{:.5}", avg));
    }
    println!();
    println!("(paper: ≈ 5.4% average gain from TAGE-SC-L over the tournament predictor)");
    ctx.finish_experiment(csv)
}
