//! Ablation: the cipher behind the code book, and code book vs inline.
//!
//! Three design questions the paper answers qualitatively, quantified here:
//!
//! 1. With the code book, does the cipher choice cost performance? (No —
//!    the fill happens off the critical path.)
//! 2. What would inlining each cipher cost? (Its latency, per redirect —
//!    ruinous for QARMA/PRINCE, cheap for LLBC/XOR.)
//! 3. Which ciphers survive cryptanalysis? (Only the non-linear ones.)

use crate::{degradation, no_switch_config, st_point_cached, Ctx, ExpResult};
use bp_attacks::linear::break_affine;
use bp_workloads::profile::SpecBenchmark;
use hybp::{CipherKind, HybpConfig, Mechanism};

pub fn run(ctx: &Ctx) -> ExpResult {
    let mut csv = ctx.csv(
        "ablation_ciphers.csv",
        "cipher,codebook_loss,inline_loss,linear_break",
    );
    let bench = SpecBenchmark::Deepsjeng;
    let base = st_point_cached(ctx, Mechanism::Baseline, bench, no_switch_config(ctx.scale)).0;
    println!(
        "Cipher ablation on {} (vs baseline IPC {:.3})",
        bench.name(),
        base
    );
    println!(
        "{:<10} {:>15} {:>13} {:>14}",
        "cipher", "code-book loss", "inline loss", "cryptanalysis"
    );
    let ciphers = [
        CipherKind::Qarma,
        CipherKind::Prince,
        CipherKind::Llbc,
        CipherKind::Xor,
    ];
    // Supervised sweep: each cipher's code-book run, inline run and
    // cryptanalysis is one independent point.
    let rows: Vec<Option<(f64, f64, bool)>> =
        ctx.sweep("ablation_ciphers:ciphers", &ciphers, |&cipher| {
            let mut cfg = HybpConfig::paper_default();
            cfg.cipher = cipher;
            let codebook = st_point_cached(
                ctx,
                Mechanism::HyBp(cfg),
                bench,
                no_switch_config(ctx.scale),
            )
            .0;
            cfg.inline_cipher = true;
            let inline = st_point_cached(
                ctx,
                Mechanism::HyBp(cfg),
                bench,
                no_switch_config(ctx.scale),
            )
            .0;
            let broken = break_affine(cipher.build(7).as_ref(), 0, 100, 1).is_some();
            (codebook, inline, broken)
        });
    for (&cipher, slot) in ciphers.iter().zip(&rows) {
        let Some((codebook, inline, broken)) = *slot else {
            continue;
        };
        println!(
            "{:<10} {:>14.2}% {:>12.2}% {:>14}",
            cipher.to_string(),
            degradation(codebook, base) * 100.0,
            degradation(inline, base) * 100.0,
            if broken { "BROKEN (affine)" } else { "resists" }
        );
        csv.row(format_args!(
            "{},{:.5},{:.5},{}",
            cipher,
            degradation(codebook, base),
            degradation(inline, base),
            broken
        ));
    }
    println!();
    println!("The design point: only the code book lets a *strong* cipher ride along at");
    println!("zero front-end cost; every inline option either costs cycles or security.");
    ctx.finish_experiment(csv)
}
