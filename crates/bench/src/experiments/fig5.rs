//! Figure 5: normalized IPC of HyBP per application across context-switch
//! intervals (256K..16M cycles).
//!
//! Under `--sample` (phase-sampled replay) the interval sweep is replaced
//! by one bounded-error point per benchmark: HyBP's IPC over the plan's
//! representative windows, normalized to the baseline's over the same
//! windows. Sampled rows carry `interval_cycles=0` and `method=sampled`,
//! and the CSV is marked with a `# sampled:` header.

use crate::{
    all_benchmarks, ipc_at_cached, model_cached, sampled_estimate, Ctx, ExpResult, INTERVALS,
};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    match &ctx.bench_subset {
        Some(subset) => run_with_benches(ctx, subset),
        None => run_with_benches(ctx, &all_benchmarks()),
    }
}

/// [`run`] over an explicit benchmark subset (what the determinism tests
/// use to exercise the full telemetry path at a fraction of the cost).
pub fn run_with_benches(ctx: &Ctx, benches: &[SpecBenchmark]) -> ExpResult {
    if ctx.sampling.is_some() {
        return run_sampled(ctx, benches);
    }
    let mut csv = ctx.csv(
        "fig5_hybp_per_app.csv",
        "benchmark,interval_cycles,normalized_ipc,method",
    );
    println!("Figure 5: normalized IPC of HyBP under different context-switch intervals");
    print!("{:<14}", "benchmark");
    for i in INTERVALS {
        print!(" {:>9}", format_interval(i));
    }
    println!();
    // Supervised sweep: one point per benchmark, each producing its full
    // per-interval row. Aggregation below runs serially in input order
    // over completed points only.
    let rows: Vec<Option<Vec<(f64, &'static str)>>> =
        ctx.sweep("fig5:benches", benches, |&bench| {
            let base = model_cached(ctx, Mechanism::Baseline, bench);
            let hybp = model_cached(ctx, Mechanism::hybp_default(), bench);
            INTERVALS
                .iter()
                .map(|&interval| {
                    let (b, _) = ipc_at_cached(ctx, Mechanism::Baseline, bench, interval, &base);
                    let (h, method) =
                        ipc_at_cached(ctx, Mechanism::hybp_default(), bench, interval, &hybp);
                    (h / b, method)
                })
                .collect()
        });
    let mut per_interval_sum = vec![0.0f64; INTERVALS.len()];
    let mut completed = 0usize;
    for (bench, slot) in benches.iter().zip(&rows) {
        let Some(row) = slot else { continue };
        completed += 1;
        print!("{:<14}", bench.name());
        for (k, &interval) in INTERVALS.iter().enumerate() {
            let (norm, method) = row[k];
            per_interval_sum[k] += norm;
            print!(" {:>9.4}", norm);
            csv.row(format_args!(
                "{},{},{:.5},{}",
                bench.name(),
                interval,
                norm,
                method
            ));
        }
        println!();
    }
    if completed > 0 {
        print!("{:<14}", "average");
        for (k, &interval) in INTERVALS.iter().enumerate() {
            let avg = per_interval_sum[k] / completed as f64;
            print!(" {:>9.4}", avg);
            csv.row(format_args!("average,{},{:.5},", interval, avg));
        }
        println!();
    }
    println!("(paper: ≥ 0.995 average at the 16M default; down to ~0.79 for the most");
    println!(" switch-sensitive applications at 256K)");
    ctx.finish_experiment(csv)
}

/// The `--sample` path: one bounded-error normalized-IPC point per
/// benchmark, computed from each stream's phase plan.
fn run_sampled(ctx: &Ctx, benches: &[SpecBenchmark]) -> ExpResult {
    let spec = ctx.sampling.as_ref().ok_or("sampled run without a spec")?;
    let mut csv = ctx.csv(
        "fig5_hybp_per_app.csv",
        "benchmark,interval_cycles,normalized_ipc,method",
    );
    println!("Figure 5 (phase-sampled): normalized IPC of HyBP, bounded-error estimate");
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>9}",
        "benchmark", "norm_ipc", "hybp_mpki", "bound", "coverage"
    );
    // One point per benchmark: sample the stream once, replay both
    // mechanisms over the same representative windows.
    type SampledRow = (f64, f64, f64, u64, u64, f64);
    let rows: Vec<Option<SampledRow>> = ctx.sweep("fig5:sampled", benches, |&bench| {
        let plan = crate::phase_plan_for(ctx, bench, spec)
            // bp-lint: allow(panic-freedom) reason="sweep boundary: the supervised sweep records this as a point failure naming the stream"
            .unwrap_or_else(|e| panic!("{e}"));
        let base = sampled_estimate(ctx, Mechanism::Baseline, bench, &plan)
            // bp-lint: allow(panic-freedom) reason="sweep boundary: the supervised sweep records this as a point failure naming the stream"
            .unwrap_or_else(|e| panic!("{e}"));
        let hybp = sampled_estimate(ctx, Mechanism::hybp_default(), bench, &plan)
            // bp-lint: allow(panic-freedom) reason="sweep boundary: the supervised sweep records this as a point failure naming the stream"
            .unwrap_or_else(|e| panic!("{e}"));
        (
            hybp.estimate.ipc() / base.estimate.ipc(),
            hybp.estimate.mpki(),
            hybp.error_bound_mpki,
            plan.selections.len() as u64,
            plan.total_windows,
            hybp.coverage,
        )
    });
    let mut selected = 0u64;
    let mut windows = 0u64;
    let mut coverage_sum = 0.0f64;
    let mut completed = 0usize;
    for (bench, slot) in benches.iter().zip(&rows) {
        let Some(&(norm, mpki, bound, sel, total, coverage)) = slot.as_ref() else {
            continue;
        };
        completed += 1;
        selected += sel;
        windows += total;
        coverage_sum += coverage;
        println!(
            "{:<14} {:>9.4} {:>10.3} {:>10.3} {:>8.2}%",
            bench.name(),
            norm,
            mpki,
            bound,
            coverage * 100.0
        );
        csv.row(format_args!("{},0,{:.5},sampled", bench.name(), norm));
    }
    if completed > 0 {
        csv.mark_sampled(selected, windows, coverage_sum / completed as f64);
    }
    println!("(each point is HyBP IPC / baseline IPC over the same representative windows;");
    println!(" MPKI error is bounded per DESIGN.md §6h)");
    ctx.finish_experiment(csv)
}

fn format_interval(i: u64) -> String {
    if i >= 1_000_000 {
        format!("{}M", i / 1_000_000)
    } else {
        format!("{}K", i / 1_000)
    }
}
