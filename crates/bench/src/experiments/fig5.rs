//! Figure 5: normalized IPC of HyBP per application across context-switch
//! intervals (256K..16M cycles).

use crate::{all_benchmarks, ipc_at_cached, model_cached, Ctx, ExpResult, INTERVALS};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

pub fn run(ctx: &Ctx) -> ExpResult {
    match &ctx.bench_subset {
        Some(subset) => run_with_benches(ctx, subset),
        None => run_with_benches(ctx, &all_benchmarks()),
    }
}

/// [`run`] over an explicit benchmark subset (what the determinism tests
/// use to exercise the full telemetry path at a fraction of the cost).
pub fn run_with_benches(ctx: &Ctx, benches: &[SpecBenchmark]) -> ExpResult {
    let mut csv = ctx.csv(
        "fig5_hybp_per_app.csv",
        "benchmark,interval_cycles,normalized_ipc,method",
    );
    println!("Figure 5: normalized IPC of HyBP under different context-switch intervals");
    print!("{:<14}", "benchmark");
    for i in INTERVALS {
        print!(" {:>9}", format_interval(i));
    }
    println!();
    // Supervised sweep: one point per benchmark, each producing its full
    // per-interval row. Aggregation below runs serially in input order
    // over completed points only.
    let rows: Vec<Option<Vec<(f64, &'static str)>>> =
        ctx.sweep("fig5:benches", benches, |&bench| {
            let base = model_cached(ctx, Mechanism::Baseline, bench);
            let hybp = model_cached(ctx, Mechanism::hybp_default(), bench);
            INTERVALS
                .iter()
                .map(|&interval| {
                    let (b, _) = ipc_at_cached(ctx, Mechanism::Baseline, bench, interval, &base);
                    let (h, method) =
                        ipc_at_cached(ctx, Mechanism::hybp_default(), bench, interval, &hybp);
                    (h / b, method)
                })
                .collect()
        });
    let mut per_interval_sum = vec![0.0f64; INTERVALS.len()];
    let mut completed = 0usize;
    for (bench, slot) in benches.iter().zip(&rows) {
        let Some(row) = slot else { continue };
        completed += 1;
        print!("{:<14}", bench.name());
        for (k, &interval) in INTERVALS.iter().enumerate() {
            let (norm, method) = row[k];
            per_interval_sum[k] += norm;
            print!(" {:>9.4}", norm);
            csv.row(format_args!(
                "{},{},{:.5},{}",
                bench.name(),
                interval,
                norm,
                method
            ));
        }
        println!();
    }
    if completed > 0 {
        print!("{:<14}", "average");
        for (k, &interval) in INTERVALS.iter().enumerate() {
            let avg = per_interval_sum[k] / completed as f64;
            print!(" {:>9.4}", avg);
            csv.row(format_args!("average,{},{:.5},", interval, avg));
        }
        println!();
    }
    println!("(paper: ≥ 0.995 average at the 16M default; down to ~0.79 for the most");
    println!(" switch-sensitive applications at 256K)");
    ctx.finish_experiment(csv)
}

fn format_interval(i: u64) -> String {
    if i >= 1_000_000 {
        format!("{}M", i / 1_000_000)
    } else {
        format!("{}K", i / 1_000)
    }
}
