//! Suite-level telemetry collection: per-point sinks fanning into one hub.
//!
//! Every simulation point computed by the harness gets a fresh ring sink
//! from [`TelemetryHub::sink`]; when the point finishes, its events are
//! absorbed back with [`TelemetryHub::absorb`]. At experiment end the hub
//! drains into one JSONL file per experiment
//! (`<telemetry_dir>/<csv-stem>.jsonl`), sorted by full event content.
//!
//! # Determinism contract
//!
//! Events are stamped with deterministic *virtual* cycles, and the flush
//! sorts by the event's entire content (cycle first), so the byte stream is
//! independent of worker-thread scheduling and of the order in which sweep
//! points were absorbed. The only remaining hazard is the model cache: a
//! cached point runs no simulation and emits nothing, so telemetry capture
//! forces the cache off (see [`crate::cli::Ctx::from_options`]) — every
//! point computes, and the event multiset is a pure function of the
//! experiment's inputs.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bp_common::telemetry::jsonl_line;
use bp_common::{Telemetry, TelemetryEvent};

/// Capacity of each per-point ring sink. Sized far above the worst-case
/// event count of a single simulation point (spans are emitted only for
/// rare occurrences — context switches and key refreshes, a few dozen per
/// run); overflow is counted, never silent.
pub const POINT_RING_CAPACITY: usize = 1 << 16;

/// What one [`TelemetryHub::flush_jsonl`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushSummary {
    /// Path of the JSONL file.
    pub path: PathBuf,
    /// Events written.
    pub events: usize,
    /// Events lost to ring overflow across the absorbed sinks (0 in any
    /// healthy run).
    pub dropped: u64,
}

/// Collects telemetry events from many per-point sinks and writes one
/// sorted JSONL file per experiment. Disabled hubs hand out disabled
/// sinks, so the instrumented helpers cost one branch per would-be event.
#[derive(Debug, Default)]
pub struct TelemetryHub {
    enabled: bool,
    events: Mutex<Vec<TelemetryEvent>>,
    dropped: AtomicU64,
    flushes: Mutex<Vec<FlushSummary>>,
}

impl TelemetryHub {
    /// A hub; disabled hubs collect nothing and write nothing.
    pub fn new(enabled: bool) -> TelemetryHub {
        TelemetryHub {
            enabled,
            ..TelemetryHub::default()
        }
    }

    /// Whether this hub collects events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A fresh sink for one simulation point (disabled when the hub is).
    pub fn sink(&self) -> Telemetry {
        if self.enabled {
            Telemetry::ring(POINT_RING_CAPACITY)
        } else {
            Telemetry::disabled()
        }
    }

    /// Moves a point sink's events (and overflow count) into the hub.
    pub fn absorb(&self, sink: &Telemetry) {
        if !self.enabled {
            return;
        }
        let drained = sink.drain();
        self.dropped.fetch_add(sink.dropped(), Ordering::Relaxed);
        if !drained.is_empty() {
            self.events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend(drained);
        }
    }

    /// Records one hub-level mark (e.g. an experiment's sweep-point count).
    pub fn mark(&self, scope: &'static str, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let sink = Telemetry::ring(1);
        sink.mark(0, scope, name, value, 0);
        self.absorb(&sink);
    }

    /// Events currently buffered (awaiting a flush).
    pub fn pending_events(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Drops any buffered events (between experiments, so a body that
    /// never flushed cannot leak events into the next experiment's file).
    /// Returns how many were discarded.
    pub fn discard_pending(&self) -> usize {
        let n = std::mem::take(
            &mut *self
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
        .len();
        self.dropped.store(0, Ordering::Relaxed);
        n
    }

    /// Writes all buffered events to `<dir>/<stem>.jsonl`, sorted by full
    /// event content, and clears the buffer.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory or writing the file.
    pub fn flush_jsonl(&self, dir: &Path, stem: &str) -> std::io::Result<FlushSummary> {
        let mut events = std::mem::take(
            &mut *self
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let dropped = self.dropped.swap(0, Ordering::Relaxed);
        events.sort_unstable();
        let mut body = String::new();
        for e in &events {
            body.push_str(&jsonl_line(e));
            body.push('\n');
        }
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.jsonl"));
        std::fs::write(&path, body)?;
        let summary = FlushSummary {
            path,
            events: events.len(),
            dropped,
        };
        self.flushes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(summary.clone());
        Ok(summary)
    }

    /// Takes the flush log accumulated since the last call (what the suite
    /// driver reads per experiment for its report).
    pub fn drain_flushes(&self) -> Vec<FlushSummary> {
        std::mem::take(
            &mut *self
                .flushes
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_common::telemetry::parse_jsonl_line;

    #[test]
    fn disabled_hub_hands_out_disabled_sinks_and_collects_nothing() {
        let hub = TelemetryHub::new(false);
        let sink = hub.sink();
        assert!(!sink.is_enabled());
        sink.mark(1, "a", "b", 2, 0);
        hub.absorb(&sink);
        hub.mark("bench", "points", 3);
        assert_eq!(hub.pending_events(), 0);
    }

    #[test]
    fn absorb_then_flush_sorts_by_cycle_regardless_of_arrival_order() {
        let hub = TelemetryHub::new(true);
        let late = hub.sink();
        late.mark(500, "sim", "late", 1, 0);
        let early = hub.sink();
        early.mark(5, "sim", "early", 1, 0);
        hub.absorb(&late);
        hub.absorb(&early);
        hub.mark("bench", "points", 2);
        assert_eq!(hub.pending_events(), 3);
        let dir = std::env::temp_dir().join(format!("hybp-telemetry-{}", std::process::id()));
        let summary = hub.flush_jsonl(&dir, "order").unwrap();
        assert_eq!(summary.events, 3);
        assert_eq!(summary.dropped, 0);
        let text = std::fs::read_to_string(&summary.path).unwrap();
        let cycles: Vec<u64> = text
            .lines()
            .map(|l| parse_jsonl_line(l).expect("schema-valid line").cycle)
            .collect();
        assert_eq!(cycles, vec![0, 5, 500]);
        assert_eq!(hub.pending_events(), 0);
        assert_eq!(hub.drain_flushes(), vec![summary]);
        assert!(hub.drain_flushes().is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let hub = TelemetryHub::new(true);
        let sink = Telemetry::ring(1);
        sink.mark(1, "a", "b", 1, 0);
        sink.mark(2, "a", "b", 2, 0);
        hub.absorb(&sink);
        let dir = std::env::temp_dir().join(format!("hybp-telemetry-drop-{}", std::process::id()));
        let summary = hub.flush_jsonl(&dir, "drop").unwrap();
        assert_eq!(summary.events, 1);
        assert_eq!(summary.dropped, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn discard_pending_isolates_experiments() {
        let hub = TelemetryHub::new(true);
        hub.mark("bench", "leftover", 1);
        assert_eq!(hub.discard_pending(), 1);
        assert_eq!(hub.pending_events(), 0);
    }
}
