//! Content-addressed on-disk cache for simulation-derived model points.
//!
//! Every experiment binary re-derives the same `(mechanism, benchmark,
//! scale)` overhead models and throughput points from scratch; a full
//! suite run repeats the expensive baseline simulations up to fifteen
//! times. This cache stores each derived point under a stable hash of
//! everything that determines it — the mechanism (including its full
//! embedded configuration), the benchmark, the scale, the exact
//! [`SimConfig`]-level parameters, and a code-version salt — so a point
//! computed once (by any binary, on any thread) is reused everywhere.
//!
//! # Correctness contract
//!
//! * Values are stored as IEEE-754 bit patterns (hex `u64`), so a cache
//!   hit reproduces the cold-run value *bit-exactly*: warm and cold runs
//!   emit byte-identical CSVs.
//! * Every entry embeds its full (pre-hash) key string; a load whose
//!   embedded key differs from the requested key (hash collision, stale
//!   layout) is treated as a miss.
//! * Any unreadable, truncated, corrupt or wrong-version entry is a
//!   miss — a bad cache file means *recompute*, never a wrong number.
//! * Bumping [`CODE_SALT`] invalidates every existing entry; do so
//!   whenever a change to the simulator or workloads can alter results.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bp_common::telemetry::{Observable, TelemetrySnapshot};

/// Format marker on the first line of every cache file.
const MAGIC: &str = "hybp-model-cache v1";

/// Code-version salt folded into every key. Bump when simulator,
/// workload-generation or mechanism semantics change in a way that can
/// alter any cached number.
pub const CODE_SALT: &str = "hybp-sim-2026-08-pr2";

/// Default on-disk location, relative to the workspace root (the bench
/// binaries all run from there, like the `results/*.csv` writers).
pub const DEFAULT_DIR: &str = "results/cache";

/// FNV-1a 64-bit over `bytes`; stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fully-described cache key. Construct with [`CacheKey::new`], folding
/// in every input that can influence the cached value via
/// [`CacheKey::with`].
#[derive(Debug, Clone)]
pub struct CacheKey {
    kind: &'static str,
    descr: String,
}

impl CacheKey {
    /// Starts a key of the given `kind` (e.g. `"model"`, `"smt_thr"`).
    /// The code-version salt is always included.
    pub fn new(kind: &'static str) -> CacheKey {
        CacheKey {
            kind,
            descr: format!("{kind}|salt={CODE_SALT}"),
        }
    }

    /// Folds one named component into the key. Use `Debug`-stable
    /// renderings for structured inputs (`format_args!("{v:?}")`): every
    /// configuration field must end up in the string, or two distinct
    /// experiment points could alias.
    pub fn with(mut self, name: &str, value: std::fmt::Arguments<'_>) -> CacheKey {
        let _ = write!(self.descr, "|{name}={value}");
        self
    }

    /// The full human-readable key string (embedded in the entry file and
    /// verified on load).
    pub fn descr(&self) -> &str {
        &self.descr
    }

    /// Content-addressed file name for this key.
    fn file_name(&self) -> String {
        format!("{}-{:016x}.txt", self.kind, fnv1a(self.descr.as_bytes()))
    }
}

/// Hit/miss and failure counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Entries computed (absent, corrupt, or caching disabled).
    pub misses: u64,
    /// Entry writes that failed (directory creation, tmp write, or
    /// rename). The computed value is still returned — a store failure
    /// costs reuse, never correctness — but it is counted here so the
    /// suite report can surface a cache that has stopped persisting.
    pub store_failures: u64,
    /// Corrupt or stale entries moved to the `quarantine/` subdirectory
    /// instead of being silently overwritten.
    pub quarantined: u64,
}

impl CacheStats {
    /// Hits over total lookups, zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Subdirectory (inside the cache directory) holding quarantined
/// entries.
pub const QUARANTINE_SUBDIR: &str = "quarantine";

/// Process-wide sequence number folded into tmp-file and quarantine
/// names. The pid alone is not enough: two threads of the same process
/// storing the same key would race on one tmp path, and a rename could
/// publish a half-written file.
static NAME_SEQ: AtomicU64 = AtomicU64::new(0);

/// How one cache lookup resolved.
enum LoadOutcome {
    /// Valid entry on disk.
    Hit(Vec<f64>),
    /// No entry (or caching disabled) — a plain miss.
    Absent,
    /// An entry existed but was corrupt, truncated, wrong-version or
    /// stale-keyed; it has been moved to quarantine.
    Invalid,
}

/// The on-disk model cache. Cheap to share by reference across worker
/// threads: lookups hold no lock (writes go through a temp-file rename,
/// so concurrent writers of the same key are both valid).
#[derive(Debug)]
pub struct ModelCache {
    dir: PathBuf,
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    store_failures: AtomicU64,
    quarantined: AtomicU64,
}

impl ModelCache {
    /// A cache rooted at `dir`. With `enabled = false` every lookup is a
    /// miss and nothing is written (the `--no-cache` path).
    pub fn at_dir(dir: impl Into<PathBuf>, enabled: bool) -> ModelCache {
        ModelCache {
            dir: dir.into(),
            enabled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The standard cache under [`DEFAULT_DIR`].
    pub fn standard(enabled: bool) -> ModelCache {
        ModelCache::at_dir(DEFAULT_DIR, enabled)
    }

    /// Whether lookups may be served from disk.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// The quarantine directory for this cache.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_SUBDIR)
    }

    /// [`Observable`] counters (scope `"cache"`).
    fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let s = self.stats();
        TelemetrySnapshot::new("cache")
            .with("enabled", u64::from(self.is_enabled()))
            .with("hits", s.hits)
            .with("misses", s.misses)
            .with("store_failures", s.store_failures)
            .with("quarantined", s.quarantined)
    }

    /// Returns the cached values for `key`, or computes them with
    /// `compute`, stores them, and returns them. `compute` must be a pure
    /// function of the key's components — that is the caller's half of
    /// the determinism contract.
    pub fn get_or_compute<F>(&self, key: &CacheKey, compute: F) -> Vec<f64>
    where
        F: FnOnce() -> Vec<f64>,
    {
        match self.load(key) {
            LoadOutcome::Hit(vals) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return vals;
            }
            LoadOutcome::Absent | LoadOutcome::Invalid => {}
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let vals = compute();
        self.store(key, &vals);
        vals
    }

    /// Single-value convenience over [`ModelCache::get_or_compute`].
    pub fn get_or_compute_one<F>(&self, key: &CacheKey, compute: F) -> f64
    where
        F: FnOnce() -> f64,
    {
        self.get_or_compute(key, || vec![compute()])[0]
    }

    /// Loads and validates an entry. A missing file is a plain miss; a
    /// present-but-invalid file (corrupt, truncated, wrong version, stale
    /// key) is quarantined and counted, then treated as a miss — a bad
    /// cache file means *recompute*, never a wrong number, and the
    /// evidence is preserved instead of silently overwritten.
    fn load(&self, key: &CacheKey) -> LoadOutcome {
        if !self.enabled {
            return LoadOutcome::Absent;
        }
        let path = self.dir.join(key.file_name());
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Absent,
            // Present but unreadable as text (e.g. binary garbage).
            Err(_) => {
                self.quarantine(&path);
                return LoadOutcome::Invalid;
            }
        };
        match parse_entry(&text, key) {
            Some(vals) => LoadOutcome::Hit(vals),
            None => {
                self.quarantine(&path);
                LoadOutcome::Invalid
            }
        }
    }

    /// Moves a bad entry into the quarantine subdirectory under a unique
    /// name. Best-effort: if the move itself fails the entry is left in
    /// place (the next store will replace it) and nothing is counted.
    fn quarantine(&self, path: &Path) {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            return;
        };
        let qdir = self.quarantine_dir();
        if std::fs::create_dir_all(&qdir).is_err() {
            return;
        }
        let dest = qdir.join(format!(
            "{name}.{}-{}",
            std::process::id(),
            NAME_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::rename(path, &dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Writes an entry via temp-file + rename so readers never observe a
    /// partial file. The tmp name carries both the pid and a process-wide
    /// counter: same-process threads storing one key concurrently get
    /// distinct tmp files, so a rename can only ever publish a complete
    /// entry. Failures cost reuse, not correctness, but are counted in
    /// [`CacheStats::store_failures`] for the suite report.
    fn store(&self, key: &CacheKey, vals: &[f64]) {
        if !self.enabled {
            return;
        }
        if std::fs::create_dir_all(&self.dir).is_err() {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut body = format!("{MAGIC}\nkey {}\nvals", key.descr());
        for v in vals {
            let _ = write!(body, " {:016x}", v.to_bits());
        }
        body.push_str("\nend\n");
        let target = self.dir.join(key.file_name());
        let tmp = self.dir.join(format!(
            "{}.tmp{}.{}",
            key.file_name(),
            std::process::id(),
            NAME_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, body).is_err() {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if std::fs::rename(&tmp, &target).is_err() {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

impl Observable for ModelCache {
    fn snapshot(&self) -> TelemetrySnapshot {
        self.telemetry_snapshot()
    }
}

/// Parses one entry body against its expected key; `None` on any
/// irregularity.
fn parse_entry(text: &str, key: &CacheKey) -> Option<Vec<f64>> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let key_line = lines.next()?;
    if key_line.strip_prefix("key ")? != key.descr() {
        return None;
    }
    let vals_line = lines.next()?.strip_prefix("vals")?;
    let mut vals = Vec::new();
    for tok in vals_line.split_whitespace() {
        vals.push(f64::from_bits(u64::from_str_radix(tok, 16).ok()?));
    }
    if lines.next() != Some("end") {
        return None; // truncated mid-write
    }
    Some(vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> ModelCache {
        let dir =
            std::env::temp_dir().join(format!("hybp-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelCache::at_dir(dir, true)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let cache = tmp_cache("roundtrip");
        let key = CacheKey::new("test").with("x", format_args!("1"));
        let vals = vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1.0e300];
        let first = cache.get_or_compute(&key, || vals.clone());
        let second = cache.get_or_compute(&key, || panic!("must hit"));
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_means_recompute() {
        let cache = tmp_cache("corrupt");
        let key = CacheKey::new("test").with("x", format_args!("2"));
        cache.get_or_compute(&key, || vec![42.0]);
        // Truncate / garble every file in the dir.
        for entry in std::fs::read_dir(cache.dir()).unwrap() {
            std::fs::write(entry.unwrap().path(), "hybp-model-cache v1\nkey zzz").unwrap();
        }
        let again = cache.get_or_compute(&key, || vec![42.0]);
        assert_eq!(again, vec![42.0]);
        assert_eq!(cache.stats().misses, 2);
        // The corrupt file was preserved for inspection, not destroyed.
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(
            std::fs::read_dir(cache.quarantine_dir()).unwrap().count(),
            1
        );
        // The recomputed entry is valid again.
        assert_eq!(cache.get_or_compute(&key, || vec![0.0]), vec![42.0]);
        assert_eq!(cache.stats().hits, 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn quarantine_names_never_collide() {
        let cache = tmp_cache("quarantine-seq");
        let key = CacheKey::new("test").with("x", format_args!("q"));
        for round in 0..3 {
            cache.get_or_compute(&key, || vec![round as f64]);
            let entry = cache.dir().join(key.file_name());
            std::fs::write(&entry, "not a cache file").unwrap();
            cache.get_or_compute(&key, || vec![round as f64]);
        }
        assert_eq!(cache.stats().quarantined, 3);
        assert_eq!(
            std::fs::read_dir(cache.quarantine_dir()).unwrap().count(),
            3
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn unwritable_dir_counts_store_failures_and_still_computes() {
        // A cache rooted *under a regular file* can never create its
        // directory: every store must fail, every lookup must miss, and
        // every value must still come out right.
        let blocker = std::env::temp_dir().join(format!("hybp-cache-block-{}", std::process::id()));
        std::fs::write(&blocker, "not a directory").unwrap();
        let cache = ModelCache::at_dir(blocker.join("cache"), true);
        let key = CacheKey::new("test").with("x", format_args!("w"));
        assert_eq!(cache.get_or_compute_one(&key, || 7.0), 7.0);
        assert_eq!(cache.get_or_compute_one(&key, || 8.0), 8.0);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.store_failures, 2);
        std::fs::remove_file(&blocker).unwrap();
    }

    #[test]
    fn concurrent_same_key_stores_leave_one_valid_entry() {
        // Regression for the same-pid tmp-file collision: many threads of
        // one process storing the same key concurrently must each write a
        // distinct tmp file, so the published entry is always complete.
        let cache = tmp_cache("concurrent");
        let key = CacheKey::new("test").with("x", format_args!("c"));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let v = cache.get_or_compute(&key, || vec![1.25, -2.5]);
                        assert_eq!(v, vec![1.25, -2.5]);
                    }
                });
            }
        });
        // No tmp litter, no quarantines, and the surviving entry is valid.
        let names: Vec<String> = std::fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.contains(".tmp")),
            "tmp litter: {names:?}"
        );
        assert_eq!(cache.stats().quarantined, 0);
        assert_eq!(cache.stats().store_failures, 0);
        let fresh = ModelCache::at_dir(cache.dir(), true);
        assert_eq!(
            fresh.get_or_compute(&key, || panic!("must hit")),
            vec![1.25, -2.5]
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let a = CacheKey::new("model").with("mech", format_args!("Baseline"));
        let b = CacheKey::new("model").with("mech", format_args!("Flush"));
        assert_ne!(a.file_name(), b.file_name());
        assert_ne!(a.descr(), b.descr());
    }

    #[test]
    fn disabled_cache_never_hits_or_writes() {
        let dir = std::env::temp_dir().join(format!("hybp-cache-off-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ModelCache::at_dir(&dir, false);
        let key = CacheKey::new("test").with("x", format_args!("3"));
        assert_eq!(cache.get_or_compute_one(&key, || 5.0), 5.0);
        assert_eq!(cache.get_or_compute_one(&key, || 6.0), 6.0);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                ..Default::default()
            }
        );
        assert!(!dir.exists());
    }

    #[test]
    fn hit_rate_bounds() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_mirrors_stats() {
        let dir = std::env::temp_dir().join(format!("hybp-cache-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ModelCache::at_dir(&dir, false);
        let key = CacheKey::new("test").with("x", format_args!("9"));
        let _ = cache.get_or_compute_one(&key, || 1.0);
        let snap = cache.snapshot();
        assert_eq!(snap.scope, "cache");
        assert_eq!(snap.get("enabled"), 0);
        assert_eq!(snap.get("misses"), 1);
        assert_eq!(snap.get("hits"), 0);
    }
}
