//! Experiment harness for regenerating every table and figure of the HyBP
//! paper. One binary per experiment lives in `src/bin/`; this library holds
//! the shared measurement machinery.
//!
//! # Measurement strategy (see `DESIGN.md` §8 and `EXPERIMENTS.md`)
//!
//! Context-switch intervals up to 16M cycles cannot be swept directly at
//! laptop scale (a single 16M-cycle interval spans tens of millions of
//! instructions). The harness therefore uses the standard decomposition
//!
//! ```text
//! CPI_mech(I) ≈ CPI_mech(∞) · (1 + C_mech / I)
//! ```
//!
//! where `CPI(∞)` is measured in a run without context switches (timer
//! kernel episodes still run — they are interval-independent) and `C`, the
//! per-switch cycle cost, is measured directly from a run at a 1M-cycle
//! interval covering several switches. Small intervals (≤ 1M) are always
//! measured directly; the model is validated against direct measurement at
//! the crossover. Every CSV row records which method produced it.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use bp_common::{Cycle, Telemetry};
use bp_pipeline::{
    kernel_stream_name, kernel_stream_seed, stream_name, stream_seed, RunMetrics, SimConfig,
    Simulation,
};
use bp_trace::TraceStore;
use bp_workloads::profile::{BenchmarkProfile, SpecBenchmark};
use hybp::Mechanism;

pub mod cache;
pub mod cli;
pub mod experiments;
pub mod serve;
pub mod speed;
pub mod supervise;
pub mod telemetry;
pub mod timing;

pub use cache::{CacheKey, ModelCache};
pub use cli::{exp_main, Ctx};
pub use supervise::{PointFailure, Supervisor, SweepReport};
pub use telemetry::{FlushSummary, TelemetryHub};

/// Pre-loads every stream a workload layout will replay, so a damaged
/// trace fails with the *full* decode diagnosis (chunk ordinal and byte
/// offset) instead of the builder's static [`bp_common::ConfigError`]
/// text. Runs at the sweep boundary: the panic becomes a recorded point
/// failure whose message carries the trace error.
fn preload_streams(store: &Arc<TraceStore>, seed: u64, threads: &[Vec<SpecBenchmark>]) {
    for (i, sw) in threads.iter().enumerate() {
        for (j, b) in sw.iter().enumerate() {
            let name = stream_name(i, j, *b);
            if let Err(e) = store.load(&name, stream_seed(seed, i, j)) {
                // bp-lint: allow(panic-freedom) reason="sweep boundary: the supervised sweep records this as a point failure naming the damaged chunk"
                panic!("trace replay {name}: {e}");
            }
        }
        let name = kernel_stream_name(i);
        if let Err(e) = store.load(&name, kernel_stream_seed(seed, i)) {
            // bp-lint: allow(panic-freedom) reason="sweep boundary: the supervised sweep records this as a point failure naming the damaged chunk"
            panic!("trace replay {name}: {e}");
        }
    }
}

/// Runs one single-thread simulation point, observed by `telemetry`,
/// replaying from `trace` when one is attached.
///
/// The deadline backstop is an invariant here — harness configs always
/// retire their measurement quota — so a runaway is a panic, which the
/// supervised sweeps convert into a recorded point failure.
fn run_single(
    mechanism: Mechanism,
    bench: SpecBenchmark,
    cfg: SimConfig,
    telemetry: &Telemetry,
    trace: Option<&Arc<TraceStore>>,
) -> RunMetrics {
    if let Some(store) = trace {
        preload_streams(store, cfg.seed, &[vec![bench, bench]]);
    }
    Simulation::builder(mechanism, cfg)
        .single_thread(bench)
        .telemetry(telemetry.clone())
        .trace_store(trace.map(Arc::clone))
        .build()
        // bp-lint: allow(panic-freedom) reason="sweep boundary: configs here are built from validated presets, and the supervised sweep records a panic as a point failure"
        .expect("valid config")
        .run()
        // bp-lint: allow(panic-freedom) reason="sweep boundary: a failed run is a programming error the supervised sweep records as a point failure"
        .expect("simulation completes")
}

/// Runs one SMT co-run point, observed by `telemetry`, replaying from
/// `trace` when one is attached.
fn run_smt_pair(
    mechanism: Mechanism,
    pair: [SpecBenchmark; 2],
    cfg: SimConfig,
    telemetry: &Telemetry,
    trace: Option<&Arc<TraceStore>>,
) -> RunMetrics {
    if let Some(store) = trace {
        preload_streams(
            store,
            cfg.seed,
            &[vec![pair[0], pair[0]], vec![pair[1], pair[1]]],
        );
    }
    Simulation::builder(mechanism, cfg)
        .smt(pair)
        .telemetry(telemetry.clone())
        .trace_store(trace.map(Arc::clone))
        .build()
        // bp-lint: allow(panic-freedom) reason="sweep boundary: configs here are built from validated presets, and the supervised sweep records a panic as a point failure"
        .expect("valid config")
        .run()
        // bp-lint: allow(panic-freedom) reason="sweep boundary: a failed run is a programming error the supervised sweep records as a point failure"
        .expect("simulation completes")
}

/// What an experiment body returns: `Ok(())` or a printable failure (a
/// violated invariant, an unwritable CSV, a degraded sweep, …). The error
/// is `Send + Sync` so a whole experiment can run behind the deadline
/// watchdog's channel.
pub type ExpResult = Result<(), Box<dyn std::error::Error + Send + Sync>>;

/// Run-length preset, selectable with `--scale quick|default|full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast smoke runs (CI-sized).
    Quick,
    /// The documented default (EXPERIMENTS.md numbers).
    Default,
    /// Long runs for tighter confidence.
    Full,
}

impl Scale {
    /// Parses one scale value through the shared strict-parse helper
    /// ([`bp_common::parse::one_of`]).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid options when `v` is not one of
    /// them — a typo like `ful` must never silently run at a different
    /// scale.
    pub fn parse(v: &str) -> Result<Scale, String> {
        bp_common::parse::one_of(
            "scale",
            v,
            &[
                ("quick", Scale::Quick),
                ("default", Scale::Default),
                ("full", Scale::Full),
            ],
        )
    }

    /// The value accepted by [`Scale::parse`] for this scale.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// Parses `--scale <v>` from argv, defaulting to [`Scale::Default`]
    /// when the flag is absent. An unknown value is a fatal usage error
    /// (exit code 2), not a silent fallback.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                let v = args.get(i + 1).map(String::as_str).unwrap_or("");
                match Scale::parse(v) {
                    Ok(s) => return s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
        Scale::Default
    }

    /// Instructions measured per no-switch (fixed-part) run. Must span
    /// several kernel-timer intervals (the interval-independent privilege
    /// flushes are part of the fixed cost being measured).
    pub fn fixed_instructions(self) -> u64 {
        match self {
            Scale::Quick => 2_000_000,
            Scale::Default => 5_000_000,
            Scale::Full => 16_000_000,
        }
    }

    /// Warmup instructions.
    pub fn warmup_instructions(self) -> u64 {
        match self {
            Scale::Quick => 150_000,
            Scale::Default => 400_000,
            Scale::Full => 1_500_000,
        }
    }

    /// Context switches covered by the per-switch-cost calibration run.
    pub fn calibration_switches(self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Default => 5,
            Scale::Full => 10,
        }
    }
}

/// Interval used for per-switch-cost calibration.
pub const CALIBRATION_INTERVAL: Cycle = 1_000_000;

/// The paper's context-switch interval sweep (cycles).
pub const INTERVALS: [Cycle; 5] = [256_000, 512_000, 1_000_000, 4_000_000, 16_000_000];

/// The default "Linux time slice" interval.
pub const DEFAULT_INTERVAL: Cycle = 16_000_000;

/// A no-context-switch simulation config (timer episodes still fire).
pub fn no_switch_config(scale: Scale) -> SimConfig {
    let mut cfg = SimConfig::default_run();
    cfg.ctx_switch_interval = u64::MAX / 4; // never fires
    cfg.warmup_instructions = scale.warmup_instructions();
    cfg.measure_instructions = scale.fixed_instructions();
    cfg
}

/// A direct-measurement config at `interval`, sized to cover
/// `switches` context switches.
pub fn direct_config(scale: Scale, interval: Cycle, switches: u64, base_ipc: f64) -> SimConfig {
    let mut cfg = SimConfig::default_run();
    cfg.ctx_switch_interval = interval;
    cfg.warmup_instructions = scale.warmup_instructions();
    let needed = (interval as f64 * switches as f64 * base_ipc * 1.1) as u64;
    cfg.measure_instructions = needed.max(scale.fixed_instructions());
    cfg
}

/// Upper bound on instructions any harness run at `scale` consumes from
/// one replay stream of `profile`, plus slack. `trace_tool record` uses
/// this as the per-stream record budget so captures cover every config
/// the experiments build at that scale: the widest run is either the
/// fixed-part run or the largest direct-measurement run (interval
/// ≤ [`CALIBRATION_INTERVAL`], sized by [`direct_config`] for
/// `max(4, calibration_switches)` switches).
pub fn replay_stream_budget(scale: Scale, profile: &BenchmarkProfile) -> u64 {
    let switches = scale.calibration_switches().max(4);
    let direct = (CALIBRATION_INTERVAL as f64 * switches as f64 * profile.base_ipc * 1.1) as u64;
    scale.warmup_instructions() + direct.max(scale.fixed_instructions()) + 256_000
}

/// Per-(mechanism, benchmark) interval-overhead model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// IPC with no context switches.
    pub ipc_fixed: f64,
    /// Per-switch cycle cost (model parameter `C`).
    pub per_switch_cycles: f64,
}

impl OverheadModel {
    /// Predicted IPC at context-switch interval `I`.
    pub fn ipc_at(&self, interval: Cycle) -> f64 {
        self.ipc_fixed / (1.0 + self.per_switch_cycles / interval as f64)
    }
}

/// Measures the overhead model for a single-thread run of `bench` under
/// `mechanism`.
pub fn single_thread_model(
    mechanism: Mechanism,
    bench: SpecBenchmark,
    scale: Scale,
) -> OverheadModel {
    single_thread_model_observed(mechanism, bench, scale, &Telemetry::disabled(), None)
}

/// [`single_thread_model`] with both underlying runs observed by
/// `telemetry` (what the cached harness path uses, so span events survive
/// into the suite's JSONL export) and optionally replayed from `trace`.
pub fn single_thread_model_observed(
    mechanism: Mechanism,
    bench: SpecBenchmark,
    scale: Scale,
    telemetry: &Telemetry,
    trace: Option<&Arc<TraceStore>>,
) -> OverheadModel {
    let fixed = run_single(mechanism, bench, no_switch_config(scale), telemetry, trace);
    let ipc_fixed = fixed.threads[0].ipc();
    let cal_cfg = direct_config(
        scale,
        CALIBRATION_INTERVAL,
        scale.calibration_switches(),
        bench.profile().base_ipc,
    );
    let cal = run_single(mechanism, bench, cal_cfg, telemetry, trace);
    let ipc_cal = cal.threads[0].ipc();
    // CPI(I)/CPI(∞) = 1 + C/I  ⇒  C = I · (ipc_fixed/ipc_cal − 1).
    let per_switch_cycles = (CALIBRATION_INTERVAL as f64 * (ipc_fixed / ipc_cal - 1.0)).max(0.0);
    OverheadModel {
        ipc_fixed,
        per_switch_cycles,
    }
}

/// IPC of `bench` under `mechanism` at `interval`: measured directly when
/// the interval is small enough, modeled otherwise. Returns `(ipc, method)`.
pub fn single_thread_ipc_at(
    mechanism: Mechanism,
    bench: SpecBenchmark,
    interval: Cycle,
    model: &OverheadModel,
    scale: Scale,
) -> (f64, &'static str) {
    if interval <= CALIBRATION_INTERVAL {
        let cfg = direct_config(scale, interval, 4, bench.profile().base_ipc);
        let m = run_single(mechanism, bench, cfg, &Telemetry::disabled(), None);
        (m.threads[0].ipc(), "direct")
    } else {
        (model.ipc_at(interval), "model")
    }
}

/// Relative performance degradation of `ipc` versus `baseline_ipc`.
pub fn degradation(ipc: f64, baseline_ipc: f64) -> f64 {
    (baseline_ipc - ipc) / baseline_ipc
}

/// Cache key for a simulation-derived point: folds in the mechanism
/// (including its embedded config), the workload description, the scale
/// and the *exact* simulation parameters, so no two distinct points can
/// alias and any config change misses cleanly.
fn sim_key(
    kind: &'static str,
    mechanism: Mechanism,
    workload: &str,
    scale: Scale,
    cfg: &SimConfig,
) -> CacheKey {
    CacheKey::new(kind)
        .with("mech", format_args!("{mechanism:?}"))
        .with("workload", format_args!("{workload}"))
        .with("scale", format_args!("{}", scale.name()))
        .with("cfg", format_args!("{cfg:?}"))
}

/// [`single_thread_model`] through the context's on-disk cache: the two
/// model parameters are stored bit-exactly, so a warm run reproduces the
/// cold run's numbers to the last bit.
pub fn model_cached(ctx: &Ctx, mechanism: Mechanism, bench: SpecBenchmark) -> OverheadModel {
    let cal_cfg = direct_config(
        ctx.scale,
        CALIBRATION_INTERVAL,
        ctx.scale.calibration_switches(),
        bench.profile().base_ipc,
    );
    let key = sim_key(
        "model",
        mechanism,
        bench.name(),
        ctx.scale,
        &no_switch_config(ctx.scale),
    )
    .with("cal_cfg", format_args!("{cal_cfg:?}"));
    let v = ctx.cache.get_or_compute(&key, || {
        let sink = ctx.telemetry.sink();
        let m =
            single_thread_model_observed(mechanism, bench, ctx.scale, &sink, ctx.trace.as_ref());
        ctx.telemetry.absorb(&sink);
        vec![m.ipc_fixed, m.per_switch_cycles]
    });
    if v.len() != 2 {
        // Malformed payload despite a matching key: fall back to compute.
        return single_thread_model_observed(
            mechanism,
            bench,
            ctx.scale,
            &Telemetry::disabled(),
            ctx.trace.as_ref(),
        );
    }
    OverheadModel {
        ipc_fixed: v[0],
        per_switch_cycles: v[1],
    }
}

/// [`single_thread_ipc_at`] with direct-measurement points served from the
/// context's cache (modeled points are free — they are pure arithmetic on
/// the already-cached model).
pub fn ipc_at_cached(
    ctx: &Ctx,
    mechanism: Mechanism,
    bench: SpecBenchmark,
    interval: Cycle,
    model: &OverheadModel,
) -> (f64, &'static str) {
    if interval <= CALIBRATION_INTERVAL {
        let cfg = direct_config(ctx.scale, interval, 4, bench.profile().base_ipc);
        let key = sim_key("direct", mechanism, bench.name(), ctx.scale, &cfg);
        let ipc = ctx.cache.get_or_compute_one(&key, || {
            let sink = ctx.telemetry.sink();
            let ipc = run_single(mechanism, bench, cfg, &sink, ctx.trace.as_ref()).threads[0].ipc();
            ctx.telemetry.absorb(&sink);
            ipc
        });
        (ipc, "direct")
    } else {
        (model.ipc_at(interval), "model")
    }
}

/// Cached single-thread point under an arbitrary config: returns
/// `(ipc, direction_accuracy)`.
pub fn st_point_cached(
    ctx: &Ctx,
    mechanism: Mechanism,
    bench: SpecBenchmark,
    cfg: SimConfig,
) -> (f64, f64) {
    let key = sim_key("st_point", mechanism, bench.name(), ctx.scale, &cfg);
    let v = ctx.cache.get_or_compute(&key, || {
        let sink = ctx.telemetry.sink();
        let m = run_single(mechanism, bench, cfg, &sink, ctx.trace.as_ref());
        ctx.telemetry.absorb(&sink);
        vec![m.threads[0].ipc(), m.bpu.direction_accuracy()]
    });
    if v.len() != 2 {
        let m = run_single(
            mechanism,
            bench,
            cfg,
            &Telemetry::disabled(),
            ctx.trace.as_ref(),
        );
        return (m.threads[0].ipc(), m.bpu.direction_accuracy());
    }
    (v[0], v[1])
}

/// Cached no-switch single-thread IPC (the most shared point of all: every
/// baseline comparison starts here).
pub fn no_switch_ipc_cached(ctx: &Ctx, mechanism: Mechanism, bench: SpecBenchmark) -> f64 {
    st_point_cached(ctx, mechanism, bench, no_switch_config(ctx.scale)).0
}

/// Cached SMT point for one co-running pair: returns
/// `(throughput, per-thread IPCs)`.
pub fn smt_point_cached(
    ctx: &Ctx,
    mechanism: Mechanism,
    pair: [SpecBenchmark; 2],
    cfg: SimConfig,
) -> (f64, Vec<f64>) {
    let workload = format!("{}+{}", pair[0].name(), pair[1].name());
    let key = sim_key("smt_point", mechanism, &workload, ctx.scale, &cfg);
    let v = ctx.cache.get_or_compute(&key, || {
        let sink = ctx.telemetry.sink();
        let m = run_smt_pair(mechanism, pair, cfg, &sink, ctx.trace.as_ref());
        ctx.telemetry.absorb(&sink);
        let mut out = vec![m.throughput()];
        out.extend(m.ipcs());
        out
    });
    if v.len() < 2 {
        let m = run_smt_pair(
            mechanism,
            pair,
            cfg,
            &Telemetry::disabled(),
            ctx.trace.as_ref(),
        );
        return (m.throughput(), m.ipcs());
    }
    (v[0], v[1..].to_vec())
}

/// Computes (deterministically) the phase plan for `bench`'s canonical
/// replay stream in `ctx`'s trace store under `spec`.
///
/// # Errors
///
/// Returns a message when no trace store is attached, the stream is
/// missing or undecodable, or the trace is shorter than one window.
pub fn phase_plan_for(
    ctx: &Ctx,
    bench: SpecBenchmark,
    spec: &bp_trace::SamplingSpec,
) -> Result<bp_trace::PhasePlan, String> {
    let store = ctx
        .trace
        .as_ref()
        .ok_or("phase sampling requires --trace-dir")?;
    let name = stream_name(0, 0, bench);
    let seed = stream_seed(SimConfig::default_run().seed, 0, 0);
    let loaded = store
        .load(&name, seed)
        .map_err(|e| format!("{name}: {e}"))?;
    let (plan, _) = loaded.sample(spec).map_err(|e| format!("{name}: {e}"))?;
    Ok(plan)
}

/// One sampled-replay point: the bounded-error MPKI/IPC estimate for
/// (`mechanism`, `bench`) over the plan's representative windows.
///
/// # Errors
///
/// Returns a message when the replay cannot be built (no store, missing
/// stream) or the plan is stale for the store's current bytes.
pub fn sampled_estimate(
    ctx: &Ctx,
    mechanism: Mechanism,
    bench: SpecBenchmark,
    plan: &bp_trace::PhasePlan,
) -> Result<bp_pipeline::SampledEstimate, String> {
    Simulation::builder(mechanism, SimConfig::default_run())
        .single_thread(bench)
        .trace_store(ctx.trace.clone())
        .sampled_replay(plan.clone())
        .map_err(|e| format!("{}: {e}", bench.name()))?
        .run()
        .map_err(|e| format!("{}: {e}", bench.name()))
}

/// Synthesizes a phase-alternating branch stream: `phases` cycle every
/// `phase_instructions`, each phase drawing from its benchmark's profile,
/// until `total_instructions` are covered. This is the worst reasonable
/// case for sampling (abrupt phase changes) and the best case for showing
/// why one contiguous sample is not enough.
pub fn phased_records(
    seed: u64,
    phases: &[SpecBenchmark],
    phase_instructions: u64,
    total_instructions: u64,
) -> Vec<bp_common::BranchRecord> {
    let mut gens: Vec<_> = phases
        .iter()
        .enumerate()
        .map(|(i, b)| {
            bp_workloads::WorkloadGenerator::new(b.profile(), seed ^ ((i as u64 + 1) << 24))
        })
        .collect();
    let mut records = Vec::new();
    let mut instructions = 0u64;
    while instructions < total_instructions {
        let phase = ((instructions / phase_instructions) as usize) % gens.len();
        let r = gens[phase].next_branch();
        instructions += u64::from(r.gap) + 1;
        records.push(r);
    }
    records
}

/// Simple CSV accumulator writing into a results directory.
#[derive(Debug)]
pub struct Csv {
    path: String,
    buf: String,
    partial: Option<(usize, usize)>,
    sampled: Option<(u64, u64, f64)>,
}

impl Csv {
    /// Creates a CSV under `results/` with a header row; the file is
    /// written on [`Csv::finish`].
    pub fn new(name: &str, header: &str) -> Csv {
        Csv::at_dir("results", name, header)
    }

    /// Creates a CSV under an explicit directory (what [`Ctx::csv`] uses,
    /// so tests can redirect output away from the tracked `results/`).
    pub fn at_dir(dir: impl AsRef<Path>, name: &str, header: &str) -> Csv {
        let mut buf = String::new();
        let _ = writeln!(buf, "{header}");
        Csv {
            path: dir.as_ref().join(name).display().to_string(),
            buf,
            partial: None,
            sampled: None,
        }
    }

    /// Appends one row.
    pub fn row(&mut self, row: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.buf, "{row}");
    }

    /// File stem of the output path (telemetry JSONL exports are named
    /// after it, so `fig5_hybp_per_app.csv` pairs with
    /// `fig5_hybp_per_app.jsonl`).
    pub fn stem(&self) -> String {
        Path::new(&self.path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "experiment".to_owned())
    }

    /// Marks the file as degraded output: [`Csv::finish`] will prepend a
    /// `# partial: N/M points` comment line so downstream diffing can
    /// never mistake a degraded CSV for a complete one. A complete file
    /// carries no comment and stays byte-identical to the pre-supervision
    /// format.
    pub fn mark_partial(&mut self, completed: usize, total: usize) {
        self.partial = Some((completed, total));
    }

    /// Marks the file as produced by phase-sampled replay: [`Csv::finish`]
    /// will prepend a `# sampled: k/N windows (coverage …)` comment line so
    /// a bounded-error estimate can never be mistaken for a full replay.
    /// Composes with [`Csv::mark_partial`], whose line stays first.
    pub fn mark_sampled(&mut self, selected: u64, total_windows: u64, coverage: f64) {
        self.sampled = Some((selected, total_windows, coverage));
    }

    /// Writes the file (creating the directory if needed) and returns the
    /// path.
    pub fn finish(self) -> std::io::Result<String> {
        if let Some(parent) = Path::new(&self.path).parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut body = self.buf;
        if let Some((selected, total, coverage)) = self.sampled {
            body = format!(
                "# sampled: {selected}/{total} windows (coverage {:.2}%)\n{body}",
                coverage * 100.0
            );
        }
        if let Some((completed, total)) = self.partial {
            body = format!("# partial: {completed}/{total} points\n{body}");
        }
        std::fs::write(&self.path, body)?;
        Ok(self.path)
    }
}

/// The single-thread benchmark list (all of Table V's constituents).
pub fn all_benchmarks() -> [SpecBenchmark; 14] {
    SpecBenchmark::ALL
}

/// Pretty percent formatting.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_predicts_monotone_in_interval() {
        let m = OverheadModel {
            ipc_fixed: 2.0,
            per_switch_cycles: 100_000.0,
        };
        assert!(m.ipc_at(256_000) < m.ipc_at(16_000_000));
        assert!(m.ipc_at(16_000_000) <= 2.0);
    }

    #[test]
    fn degradation_signs() {
        assert!(degradation(1.9, 2.0) > 0.0);
        assert!(degradation(2.1, 2.0) < 0.0);
    }

    #[test]
    fn csv_writes_rows() {
        let mut c = Csv::new("test_tmp.csv", "a,b");
        c.row(format_args!("1,2"));
        let p = c.finish().unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        std::fs::remove_file(p).unwrap();
    }
}
