//! `bench::serve` — the closed-loop service soak with a pinned resilience
//! trajectory.
//!
//! Drives [`bp_serve::ServeEngine`] through the deterministic synthetic
//! soak workload ([`bp_serve::WorkloadSpec::soak`]) and reports two kinds
//! of numbers:
//!
//! * **deterministic counters** — answered / shed (by reason) / lost /
//!   degraded / restarts / mispredicted plus the exact p99 latency in
//!   *virtual* cycles. These are bit-identical for any `--threads` value
//!   and are compared **exactly** under `bench_serve --check`;
//! * **throughput** — wall-clock predictions per second, compared under
//!   `--check` with the same 25% retain floor as `bench_speed`.
//!
//! Results land in the root-level `BENCH_serve.json` (written by the
//! `bench_serve` bin) next to `BENCH_speed.json`, with the same pinned
//! `baseline` block discipline. Fault-injected runs (`HYBP_FAULT_POINTS`
//! with `shard-panic`/`refresh-stall`/`queue-overload` entries) never touch
//! the pinned file; instead they write a journal naming every shed and lost
//! request so the CI `serve-resilience` job can prove nothing was silently
//! dropped. The wall clock only ever feeds the throughput number and
//! diagnostics — never the counters — hence the file-wide waiver below.

#![allow(clippy::disallowed_types)] // Instant, waived file-wide in bp-lint below

// bp-lint: allow-file(determinism-time) reason="service soak harness: wall-clock predictions/sec is the deliverable (BENCH_serve.json trajectory); every checked counter is virtual-time and thread-invariant"
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use bp_common::pool::Pool;
use bp_faults::points::PointFaultPlan;
use bp_serve::{Response, ServeConfig, ServeEngine, ServeReport, WorkloadSpec};

use crate::cache::CODE_SALT;

/// Report schema version (bump on any layout change).
pub const SCHEMA: u32 = 1;

/// Workload seed for the soak stream (independent of the engine seed).
pub const WORKLOAD_SEED: u64 = 0x5eed_10ad_0000_0008;

/// Soak size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CI-sized: enough traffic to exercise bursts, sheds, and snapshots.
    Quick,
    /// Trajectory-quality: a long soak for stable throughput numbers.
    Full,
}

impl Mode {
    /// Canonical name as written to / parsed from the report.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Full => "full",
        }
    }

    /// Parses a canonical mode name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "quick" => Ok(Mode::Quick),
            "full" => Ok(Mode::Full),
            other => Err(format!("unknown serve mode `{other}` (quick|full)")),
        }
    }

    /// Requests submitted during the soak.
    pub fn requests(self) -> u64 {
        match self {
            Mode::Quick => 100_000,
            Mode::Full => 1_000_000,
        }
    }
}

/// The deterministic half of a soak measurement: pure virtual-time
/// counters, bit-identical for any worker-pool thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakCounters {
    /// Requests submitted.
    pub requests: u64,
    /// Shards serving them.
    pub shards: u64,
    /// Requests answered.
    pub answered: u64,
    /// Requests shed: queue full at arrival.
    pub shed_overload: u64,
    /// Requests shed: deadline unmeetable.
    pub shed_deadline: u64,
    /// Requests shed: shard out of restart budget.
    pub shed_failed: u64,
    /// Requests lost to shard panics.
    pub lost: u64,
    /// Answers served inside a stale-key window.
    pub degraded_answers: u64,
    /// Distinct stale-key windows entered.
    pub degraded_windows: u64,
    /// Supervisor restarts.
    pub restarts: u64,
    /// Answers that mispredicted direction or target.
    pub mispredicted: u64,
    /// Exact 99th-percentile answered latency in virtual cycles.
    pub p99_latency_cycles: u64,
}

/// One soak measurement: the deterministic counters plus throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakResult {
    /// Virtual-time counters (checked exactly).
    pub counters: SoakCounters,
    /// Answered predictions per wall-clock second (checked with a retain
    /// floor, like the speed kernels).
    pub predictions_per_sec: f64,
}

/// The pinned reference run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBaseline {
    /// Mode the baseline was captured under.
    pub mode: String,
    /// The pinned measurement.
    pub soak: SoakResult,
}

/// The full `BENCH_serve.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// Schema version ([`SCHEMA`]).
    pub schema: u32,
    /// Measurement mode of the live `soak` block.
    pub mode: String,
    /// Config fingerprint (derived from [`CODE_SALT`], like
    /// `BENCH_speed.json`, plus a serve-suite tag).
    pub fingerprint: String,
    /// The live measurement.
    pub soak: SoakResult,
    /// The pinned reference run, if one was recorded.
    pub baseline: Option<ServeBaseline>,
}

/// Deterministic fingerprint tying `BENCH_serve.json` to the declared
/// simulation-core identity: FNV-1a 64 over [`CODE_SALT`] then the suite
/// tag, so the file changes identity when the core is declared changed.
pub fn fingerprint() -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in CODE_SALT.bytes().chain(*b"/serve") {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Runs the soak: builds the paper-default engine (optionally with a fault
/// plan and a snapshot directory), generates the synthetic stream, serves
/// it on `pool`, and distills the measurement.
///
/// # Errors
///
/// Returns a message when the engine config is rejected or — the invariant
/// this whole crate exists to defend — when the report fails exact
/// accounting.
pub fn run_soak(
    mode: Mode,
    faults: &PointFaultPlan,
    pool: &Pool,
    snapshot_dir: Option<PathBuf>,
) -> Result<(ServeReport, SoakResult), String> {
    let mut config = ServeConfig::paper_default();
    config.snapshot_dir = snapshot_dir;
    let engine = ServeEngine::new(config)
        .map_err(|e| e.to_string())?
        .with_faults(faults.clone());
    let requests = bp_serve::synth_requests(&WorkloadSpec::soak(mode.requests(), WORKLOAD_SEED));
    let start = Instant::now();
    let report = engine.run(&requests, pool);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    if !report.accounting_exact() {
        return Err(format!(
            "soak accounting broken: {} responses for {} requests",
            report.responses.len(),
            requests.len()
        ));
    }
    let soak = distill(&report, elapsed);
    Ok((report, soak))
}

/// Exact p99 over answered latencies (virtual cycles); 0 when nothing was
/// answered.
fn p99_latency(report: &ServeReport) -> u64 {
    let mut latencies: Vec<u64> = report
        .responses
        .iter()
        .filter_map(|r| match r {
            Response::Answered { latency, .. } => Some(*latency),
            _ => None,
        })
        .collect();
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    latencies[((latencies.len() * 99) / 100).min(latencies.len() - 1)]
}

fn distill(report: &ServeReport, elapsed_secs: f64) -> SoakResult {
    let t = report.totals();
    let mut degraded_windows = 0;
    let mut shed_overload = 0;
    let mut shed_deadline = 0;
    let mut shed_failed = 0;
    for s in &report.shards {
        degraded_windows += s.degraded_windows;
        shed_overload += s.shed_overload;
        shed_deadline += s.shed_deadline;
        shed_failed += s.shed_failed;
    }
    SoakResult {
        counters: SoakCounters {
            requests: t.submitted,
            shards: report.shards.len() as u64,
            answered: t.answered,
            shed_overload,
            shed_deadline,
            shed_failed,
            lost: t.lost,
            degraded_answers: t.degraded_answers,
            degraded_windows,
            restarts: t.restarts,
            mispredicted: t.mispredicted,
            p99_latency_cycles: p99_latency(report),
        },
        predictions_per_sec: t.answered as f64 / elapsed_secs,
    }
}

/// Checks a report's structural invariants: schema version, parseable
/// mode, finite positive throughput, and counters that account every
/// request exactly once.
pub fn validate(report: &ServeBenchReport) -> Result<(), String> {
    if report.schema != SCHEMA {
        return Err(format!(
            "schema {} unsupported (expected {SCHEMA})",
            report.schema
        ));
    }
    Mode::parse(&report.mode)?;
    if report.fingerprint.is_empty() {
        return Err("empty fingerprint".to_string());
    }
    validate_soak("soak", &report.soak)?;
    if let Some(base) = &report.baseline {
        Mode::parse(&base.mode)?;
        validate_soak("baseline.soak", &base.soak)?;
    }
    Ok(())
}

fn validate_soak(what: &str, soak: &SoakResult) -> Result<(), String> {
    let c = &soak.counters;
    let accounted = c.answered + c.shed_overload + c.shed_deadline + c.shed_failed + c.lost;
    if accounted != c.requests {
        return Err(format!(
            "{what}: {accounted} accounted responses for {} requests",
            c.requests
        ));
    }
    if c.shards == 0 || c.requests == 0 || c.answered == 0 {
        return Err(format!("{what}: empty soak (shards/requests/answered)"));
    }
    if !soak.predictions_per_sec.is_finite() || soak.predictions_per_sec <= 0.0 {
        return Err(format!(
            "{what}.predictions_per_sec: non-positive or non-finite"
        ));
    }
    Ok(())
}

/// One named counter column: its report key and accessor.
type CounterField = (&'static str, fn(&SoakCounters) -> u64);

/// The counter fields in canonical render order, paired with accessors —
/// the single source of truth shared by the renderer and the parser.
const COUNTER_FIELDS: [CounterField; 13] = [
    ("requests", |c| c.requests),
    ("shards", |c| c.shards),
    ("answered", |c| c.answered),
    ("shed_overload", |c| c.shed_overload),
    ("shed_deadline", |c| c.shed_deadline),
    ("shed_failed", |c| c.shed_failed),
    ("lost", |c| c.lost),
    ("degraded_answers", |c| c.degraded_answers),
    ("degraded_windows", |c| c.degraded_windows),
    ("restarts", |c| c.restarts),
    ("mispredicted", |c| c.mispredicted),
    ("p99_latency_cycles", |c| c.p99_latency_cycles),
    ("predictions_per_sec", |_| 0), // rendered from the float, parsed separately
];

fn render_soak(soak: &SoakResult, indent: &str) -> String {
    let mut out = format!("{indent}\"soak\": {{ ");
    for (name, get) in &COUNTER_FIELDS[..COUNTER_FIELDS.len() - 1] {
        let _ = write!(out, "\"{name}\": {}, ", get(&soak.counters));
    }
    let _ = write!(
        out,
        "\"predictions_per_sec\": {:.1} }}",
        soak.predictions_per_sec
    );
    out
}

/// Renders the report as the canonical line-oriented JSON (the whole soak
/// object on one line — [`parse_report`] depends on this layout).
pub fn render_report(report: &ServeBenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", report.schema);
    let _ = writeln!(out, "  \"mode\": \"{}\",", report.mode);
    let _ = writeln!(out, "  \"fingerprint\": \"{}\",", report.fingerprint);
    let _ = writeln!(out, "{},", render_soak(&report.soak, "  "));
    match &report.baseline {
        None => out.push_str("  \"baseline\": null\n"),
        Some(base) => {
            out.push_str("  \"baseline\": {\n");
            let _ = writeln!(out, "    \"mode\": \"{}\",", base.mode);
            let _ = writeln!(out, "{}", render_soak(&base.soak, "    "));
            out.push_str("  }\n");
        }
    }
    out.push_str("}\n");
    out
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    let rest = line
        .trim()
        .strip_prefix(&format!("\"{key}\": \""))
        .ok_or_else(|| format!("expected string field `{key}`, got `{}`", line.trim()))?;
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated string in `{key}`"))?;
    Ok(rest[..end].to_string())
}

fn soak_line(line: &str) -> Result<SoakResult, String> {
    let t = line.trim().trim_end_matches(',');
    let t = t
        .strip_prefix("\"soak\": {")
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("expected one-line soak object, got `{}`", line.trim()))?;
    let mut counters: Vec<Option<u64>> = vec![None; COUNTER_FIELDS.len() - 1];
    let mut pps: Option<f64> = None;
    for part in t.split(", \"") {
        let part = part.trim().trim_start_matches('"');
        let (key, value) = part
            .split_once("\":")
            .ok_or_else(|| format!("malformed soak field `{part}`"))?;
        let value = value.trim().trim_end_matches(',');
        if key == "predictions_per_sec" {
            pps = Some(
                value
                    .parse::<f64>()
                    .map_err(|e| format!("bad number in `{key}`: `{value}` ({e})"))?,
            );
            continue;
        }
        let slot = COUNTER_FIELDS[..COUNTER_FIELDS.len() - 1]
            .iter()
            .position(|(name, _)| *name == key)
            .ok_or_else(|| format!("unknown soak field `{key}`"))?;
        counters[slot] = Some(
            value
                .parse::<u64>()
                .map_err(|e| format!("bad number in `{key}`: `{value}` ({e})"))?,
        );
    }
    let get = |i: usize| -> Result<u64, String> {
        counters[i].ok_or_else(|| format!("soak object missing `{}`", COUNTER_FIELDS[i].0))
    };
    Ok(SoakResult {
        counters: SoakCounters {
            requests: get(0)?,
            shards: get(1)?,
            answered: get(2)?,
            shed_overload: get(3)?,
            shed_deadline: get(4)?,
            shed_failed: get(5)?,
            lost: get(6)?,
            degraded_answers: get(7)?,
            degraded_windows: get(8)?,
            restarts: get(9)?,
            mispredicted: get(10)?,
            p99_latency_cycles: get(11)?,
        },
        predictions_per_sec: pps.ok_or("soak object missing `predictions_per_sec`")?,
    })
}

/// Strictly parses the canonical report layout emitted by
/// [`render_report`]. Any structural deviation — wrong field order,
/// unknown fields, truncation — is an error naming the offending line.
pub fn parse_report(text: &str) -> Result<ServeBenchReport, String> {
    fn next<'a>(lines: &mut std::str::Lines<'a>, what: &str) -> Result<&'a str, String> {
        lines.next().ok_or_else(|| format!("missing {what}"))
    }
    fn expect(lines: &mut std::str::Lines<'_>, want: &str) -> Result<(), String> {
        match lines.next() {
            Some(l) if l.trim() == want => Ok(()),
            Some(l) => Err(format!("expected `{want}`, got `{}`", l.trim())),
            None => Err(format!("expected `{want}`, got end of file")),
        }
    }
    let mut lines = text.lines();
    expect(&mut lines, "{")?;
    let schema_line = next(&mut lines, "schema line")?;
    let schema = schema_line
        .trim()
        .strip_prefix("\"schema\": ")
        .ok_or_else(|| format!("expected schema field, got `{}`", schema_line.trim()))?
        .trim_end_matches(',')
        .parse::<u32>()
        .map_err(|e| format!("bad schema number: {e}"))?;
    let mode = str_field(next(&mut lines, "mode line")?, "mode")?;
    let fingerprint = str_field(next(&mut lines, "fingerprint line")?, "fingerprint")?;
    let soak = soak_line(next(&mut lines, "soak line")?)?;
    let baseline = match next(&mut lines, "baseline line")?.trim() {
        "\"baseline\": null" => None,
        "\"baseline\": {" => {
            let base_mode = str_field(next(&mut lines, "baseline mode")?, "mode")?;
            let base_soak = soak_line(next(&mut lines, "baseline soak")?)?;
            expect(&mut lines, "}")?;
            Some(ServeBaseline {
                mode: base_mode,
                soak: base_soak,
            })
        }
        other => return Err(format!("expected baseline block, got `{other}`")),
    };
    expect(&mut lines, "}")?;
    if let Some(extra) = lines.next() {
        if !extra.trim().is_empty() {
            return Err(format!("trailing content after report: `{}`", extra.trim()));
        }
    }
    Ok(ServeBenchReport {
        schema,
        mode,
        fingerprint,
        soak,
        baseline,
    })
}

/// Renders the resilience journal: a header with the totals, then one line
/// per shed or lost request — nothing is summarized away, so a reviewer
/// (or the CI grep) can account for every individual disruption.
pub fn render_journal(report: &ServeReport) -> String {
    let t = report.totals();
    let mut out = String::new();
    let _ = writeln!(out, "hybp-serve-journal v1");
    let _ = writeln!(
        out,
        "totals submitted={} answered={} shed={} lost={} restarts={} degraded_answers={}",
        t.submitted, t.answered, t.shed, t.lost, t.restarts, t.degraded_answers
    );
    for s in &report.shards {
        let _ = writeln!(
            out,
            "shard index={} health={:?} submitted={} answered={} shed_overload={} shed_deadline={} shed_failed={} lost={} restarts={} degraded_windows={}",
            s.shard,
            s.health,
            s.submitted,
            s.answered,
            s.shed_overload,
            s.shed_deadline,
            s.shed_failed,
            s.lost,
            s.restarts,
            s.degraded_windows
        );
    }
    for r in &report.responses {
        match r {
            Response::Answered { .. } => {}
            Response::Shed {
                id,
                shard,
                reason,
                at,
            } => {
                let _ = writeln!(
                    out,
                    "shed id={id} shard={shard} reason={} at={at}",
                    reason.name()
                );
            }
            Response::Lost { id, shard, restart } => {
                let _ = writeln!(out, "lost id={id} shard={shard} restart={restart}");
            }
        }
    }
    let _ = writeln!(out, "end");
    out
}

/// Atomically writes the journal next to the other run artifacts.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, failed rename).
pub fn write_journal(path: &Path, report: &ServeReport) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, render_journal(report).as_bytes())?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(err) => {
            let _ = std::fs::remove_file(&tmp);
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_soak(scale: u64) -> SoakResult {
        SoakResult {
            counters: SoakCounters {
                requests: 1000 * scale,
                shards: 4,
                answered: 960 * scale,
                shed_overload: 30 * scale,
                shed_deadline: 8 * scale,
                shed_failed: scale,
                lost: scale,
                degraded_answers: 17 * scale,
                degraded_windows: 2,
                restarts: 1,
                mispredicted: 111 * scale,
                p99_latency_cycles: 1985,
            },
            // Exactly representable at the renderer's {:.1} precision so
            // render → parse round-trips bit-for-bit.
            predictions_per_sec: 123456.5 * scale as f64,
        }
    }

    #[test]
    fn render_parse_roundtrip_with_baseline() {
        let report = ServeBenchReport {
            schema: SCHEMA,
            mode: "quick".to_string(),
            fingerprint: fingerprint(),
            soak: fake_soak(3),
            baseline: Some(ServeBaseline {
                mode: "quick".to_string(),
                soak: fake_soak(1),
            }),
        };
        let parsed = parse_report(&render_report(&report)).expect("roundtrip parses");
        assert_eq!(parsed, report);
        validate(&parsed).expect("roundtrip validates");
    }

    #[test]
    fn render_parse_roundtrip_without_baseline() {
        let report = ServeBenchReport {
            schema: SCHEMA,
            mode: "full".to_string(),
            fingerprint: fingerprint(),
            soak: fake_soak(2),
            baseline: None,
        };
        let parsed = parse_report(&render_report(&report)).expect("parses");
        assert_eq!(parsed, report);
        validate(&parsed).expect("validates");
    }

    #[test]
    fn parse_rejects_truncation_and_junk() {
        let report = ServeBenchReport {
            schema: SCHEMA,
            mode: "quick".to_string(),
            fingerprint: "f".repeat(16),
            soak: fake_soak(1),
            baseline: None,
        };
        let text = render_report(&report);
        assert!(parse_report(&text[..text.len() - 3]).is_err());
        assert!(parse_report(&text.replace("\"lost\"", "\"lostX\"")).is_err());
    }

    #[test]
    fn validate_rejects_broken_accounting() {
        let mut report = ServeBenchReport {
            schema: SCHEMA,
            mode: "quick".to_string(),
            fingerprint: fingerprint(),
            soak: fake_soak(1),
            baseline: None,
        };
        report.soak.counters.lost += 1;
        assert!(validate(&report).is_err());
        report.soak.counters.lost -= 1;
        report.soak.predictions_per_sec = f64::NAN;
        assert!(validate(&report).is_err());
    }

    #[test]
    fn quick_soak_measures_and_journals() {
        let pool = Pool::new(2);
        let (report, soak) =
            run_soak(Mode::Quick, &PointFaultPlan::empty(), &pool, None).expect("soak runs");
        assert_eq!(soak.counters.requests, Mode::Quick.requests());
        assert!(soak.predictions_per_sec > 0.0);
        assert_eq!(soak.counters.lost, 0, "clean soak loses nothing");
        assert_eq!(soak.counters.degraded_windows, 0, "no stalls injected");
        let journal = render_journal(&report);
        assert!(journal.starts_with("hybp-serve-journal v1\n"));
        assert!(journal.ends_with("end\n"));
        // Every shed request appears by id.
        assert_eq!(
            journal.matches("\nshed id=").count() as u64,
            soak.counters.shed_overload + soak.counters.shed_deadline + soak.counters.shed_failed
        );
    }

    #[test]
    fn fingerprint_is_stable_hex_and_distinct_from_speed() {
        let f = fingerprint();
        assert_eq!(f.len(), 16);
        assert_eq!(f, fingerprint());
        assert!(f.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(f, crate::speed::fingerprint());
    }
}
