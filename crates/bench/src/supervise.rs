//! Sweep supervision: per-experiment bookkeeping of failed, retried and
//! recovered sweep points.
//!
//! The supervised executor ([`crate::Ctx::sweep`]) runs every sweep through
//! [`bp_common::pool::Pool::try_par_map`] in fail-soft mode: one panicking
//! or erroring point costs *that point*, never the experiment, and never
//! the suite. Whatever is lost is recorded here as a [`SweepReport`] so
//! that
//!
//! * [`crate::Ctx::finish_experiment`] can mark the experiment's CSV
//!   partial (`# partial: N/M points`) and fail the experiment *visibly*
//!   (a degraded run exits non-zero even though it ran to completion), and
//! * `bench_all` can journal exactly which points died, after how many
//!   attempts, into `results/run_report.json`.
//!
//! Reports accumulate until [`Supervisor::drain`] — the suite driver
//! drains once per experiment, standalone binaries once at exit.

use std::sync::Mutex;

use bp_common::pool::{FailureKind, TaskFailure};

/// One lost sweep point, in journal-ready form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// Input-order index within the sweep.
    pub index: usize,
    /// Attempts made before giving up (0 = never attempted).
    pub attempts: u32,
    /// Whether the terminal failure was a panic (vs a typed error or a
    /// skip).
    pub panicked: bool,
    /// Human-readable cause.
    pub message: String,
}

impl PointFailure {
    /// Converts a pool-level failure record.
    pub fn from_task(f: &TaskFailure) -> PointFailure {
        PointFailure {
            index: f.index,
            attempts: f.attempts,
            panicked: matches!(f.kind, FailureKind::Panic(_)),
            message: f.kind.to_string(),
        }
    }
}

/// Outcome of one supervised sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Sweep label (`"<experiment>:<stage>"`, e.g. `"fig5:benches"`).
    pub label: String,
    /// Points in the sweep.
    pub total: usize,
    /// Points that produced a value.
    pub completed: usize,
    /// Extra attempts spent across all points (sum of `attempts − 1`).
    pub retried_attempts: u32,
    /// Points that succeeded only after at least one retry.
    pub recovered: usize,
    /// Points that produced no value.
    pub failures: Vec<PointFailure>,
}

impl SweepReport {
    /// Points lost.
    pub fn lost(&self) -> usize {
        self.total - self.completed
    }
}

/// Thread-safe accumulator of [`SweepReport`]s for one experiment run.
#[derive(Debug, Default)]
pub struct Supervisor {
    reports: Mutex<Vec<SweepReport>>,
}

impl Supervisor {
    /// An empty supervisor.
    pub fn new() -> Supervisor {
        Supervisor::default()
    }

    /// Records one finished sweep.
    pub fn record(&self, report: SweepReport) {
        if let Ok(mut reports) = self.reports.lock() {
            reports.push(report);
        }
    }

    /// Takes every report recorded since the last drain, oldest first.
    pub fn drain(&self) -> Vec<SweepReport> {
        match self.reports.lock() {
            Ok(mut reports) => std::mem::take(&mut *reports),
            Err(_) => Vec::new(),
        }
    }

    /// `(lost points, total points)` over the undrained reports — what
    /// [`crate::Ctx::finish_experiment`] uses to decide whether the
    /// experiment degraded.
    pub fn pending_losses(&self) -> (usize, usize) {
        match self.reports.lock() {
            Ok(reports) => reports.iter().fold((0, 0), |(lost, total), r| {
                (lost + r.lost(), total + r.total)
            }),
            Err(_) => (0, 0),
        }
    }

    /// Undrained failures, flattened as `(sweep label, failure)` pairs.
    pub fn pending_failures(&self) -> Vec<(String, PointFailure)> {
        match self.reports.lock() {
            Ok(reports) => reports
                .iter()
                .flat_map(|r| r.failures.iter().map(|f| (r.label.clone(), f.clone())))
                .collect(),
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(label: &str, total: usize, completed: usize) -> SweepReport {
        SweepReport {
            label: label.to_string(),
            total,
            completed,
            retried_attempts: 0,
            recovered: 0,
            failures: (completed..total)
                .map(|index| PointFailure {
                    index,
                    attempts: 1,
                    panicked: false,
                    message: "x".to_string(),
                })
                .collect(),
        }
    }

    #[test]
    fn pending_losses_sum_and_drain_resets() {
        let s = Supervisor::new();
        s.record(lossy("a", 4, 4));
        s.record(lossy("b", 6, 4));
        assert_eq!(s.pending_losses(), (2, 10));
        assert_eq!(s.pending_failures().len(), 2);
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[1].lost(), 2);
        assert_eq!(s.pending_losses(), (0, 0));
        assert!(s.drain().is_empty());
    }
}
