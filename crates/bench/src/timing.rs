//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds fully offline, so the bench targets cannot pull in
//! an external statistics framework; this module provides the small subset
//! they need: warmup, batched timing with `Instant`, and a median-of-batches
//! report. Run them with `cargo bench -p bench --features bench-harness`.

#![allow(clippy::disallowed_types)] // Instant, waived file-wide in bp-lint below

// bp-lint: allow-file(determinism-time) reason="this harness exists to measure real wall-clock overhead; its numbers are reported as timing diagnostics, never as simulation results"
use std::time::{Duration, Instant};

/// Re-export of the compiler's optimization barrier for benchmark inputs.
pub use std::hint::black_box;

/// One measured benchmark case.
pub struct Bench {
    name: String,
    warmup: Duration,
    measure: Duration,
}

/// Timing summary of one case, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Median over measurement batches.
    pub median_ns: f64,
    /// Fastest batch (closest to the true cost, least scheduler noise).
    pub min_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

impl Report {
    /// Iterations per wall-clock second, from the median batch.
    pub fn per_second(&self) -> f64 {
        if self.median_ns > 0.0 {
            1e9 / self.median_ns
        } else {
            f64::INFINITY
        }
    }
}

impl Bench {
    /// A case with the default 300 ms warmup / 1 s measurement budget.
    pub fn new(name: impl Into<String>) -> Self {
        Bench {
            name: name.into(),
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }

    /// Overrides the measurement budget.
    pub fn measure_for(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Overrides the warmup budget.
    pub fn warmup_for(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Runs `f` repeatedly — first for the warmup budget (also used to size
    /// timing batches), then for the measurement budget — and prints one
    /// `name ... median ns/iter (min, iters)` line.
    pub fn run<T>(&self, f: impl FnMut() -> T) -> Report {
        let (report, _) = self.run_sampled(f);
        println!(
            "{:<44} {:>12} ns/iter   (min {:>10} ns, {} iters)",
            self.name,
            fmt_ns(report.median_ns),
            fmt_ns(report.min_ns),
            report.iterations
        );
        report
    }

    /// Like [`run`](Bench::run), but silent, and additionally returns the
    /// per-batch ns/iter samples sorted ascending so callers can derive tail
    /// percentiles (`bench::speed` reports p99 from them).
    pub fn run_sampled<T>(&self, mut f: impl FnMut() -> T) -> (Report, Vec<f64>) {
        // Warmup, counting iterations to size measurement batches so each
        // batch is long enough (~10 ms) for Instant's resolution.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let warm_ns = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((10e6 / warm_ns.max(1.0)).ceil() as u64).clamp(1, 1 << 24);

        let mut samples = Vec::new();
        let mut iterations = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            iterations += batch;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median_ns = samples[samples.len() / 2];
        let min_ns = samples[0];
        let report = Report {
            median_ns,
            min_ns,
            iterations,
        };
        (report, samples)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_plausible_timings() {
        let r = Bench::new("noop")
            .warmup_for(Duration::from_millis(5))
            .measure_for(Duration::from_millis(20))
            .run(|| 1u64 + black_box(1));
        assert!(r.iterations > 0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.per_second() > 0.0);
    }
}
