//! Thin entry point; the experiment body lives in
//! `bench::experiments::table1` so the `bench_all` driver can run the whole
//! suite in one process with a shared pool and model cache.
//!
//! Usage: `table1_comparison [--scale quick|default|full] [--threads N] [--no-cache]`

fn main() {
    bench::exp_main(bench::experiments::table1::run);
}
