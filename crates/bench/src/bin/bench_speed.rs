//! `bench_speed` — the hot-path kernel micro-benchmark driver.
//!
//! Measures the five pinned kernels (`tage_predict`, `tage_update`,
//! `qarma_encrypt`, `codec_xor`, `full_cycle`) and maintains the root-level
//! `BENCH_speed.json` perf trajectory:
//!
//! * default: re-measure and rewrite the live `kernels` block, *preserving*
//!   the pinned `baseline` block from the existing file (if any);
//! * `--rebaseline`: additionally pin the fresh run as the new baseline
//!   (shrink-only discipline: only do this in the PR that changes the hot
//!   paths, with the "before" run recorded first — see `results/README.md`);
//! * `--check`: measure, compare against the committed file, and exit 1 if
//!   any kernel regressed by more than 25% branches/sec (no file writes) —
//!   this is what CI's `perf-trajectory` job runs.
//!
//! `--quick` (default) and `--full` pick the per-kernel measurement budget.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::speed::{self, KernelResult, Mode, SpeedBaseline, SpeedReport, KERNELS, SCHEMA};

/// Fraction of the committed branches/sec a kernel must retain under
/// `--check` (documented in `results/README.md` and `.github/workflows`).
const CHECK_RETAIN: f64 = 0.75;

const USAGE: &str = "usage: bench_speed [--quick|--full] [--rebaseline] [--check] [--out PATH]

  --quick        ~0.2s measurement per kernel (default; what CI runs)
  --full         1s measurement per kernel (trajectory-quality numbers)
  --rebaseline   also pin this run as the new `baseline` block
  --check        compare against the committed file instead of writing:
                 exit 1 if any kernel lost >25% branches/sec
  --out PATH     report path (default: BENCH_speed.json at the repo root)";

struct Options {
    mode: Mode,
    rebaseline: bool,
    check: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        mode: Mode::Quick,
        rebaseline: false,
        check: false,
        out: PathBuf::from("BENCH_speed.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.mode = Mode::Quick,
            "--full" => opts.mode = Mode::Full,
            "--rebaseline" => opts.rebaseline = true,
            "--check" => opts.check = true,
            "--out" => {
                opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.check && opts.rebaseline {
        return Err("--check and --rebaseline are mutually exclusive".to_string());
    }
    Ok(opts)
}

/// Compares a fresh run against the committed report; returns the list of
/// kernels that regressed past the tolerance.
fn regressions(current: &[KernelResult], committed: &[KernelResult]) -> Vec<String> {
    let mut out = Vec::new();
    for name in KERNELS {
        let cur = current.iter().find(|k| k.name == name);
        let old = committed.iter().find(|k| k.name == name);
        match (cur, old) {
            (Some(c), Some(o)) => {
                let floor = o.branches_per_sec * CHECK_RETAIN;
                if c.branches_per_sec < floor {
                    out.push(format!(
                        "{name}: {:.0} branches/sec vs committed {:.0} (floor {:.0}, -{:.1}%)",
                        c.branches_per_sec,
                        o.branches_per_sec,
                        floor,
                        100.0 * (1.0 - c.branches_per_sec / o.branches_per_sec),
                    ));
                }
            }
            _ => out.push(format!("{name}: missing from current or committed run")),
        }
    }
    out
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    println!(
        "bench_speed: {} mode, fingerprint {}",
        opts.mode.name(),
        speed::fingerprint()
    );
    let kernels = speed::run_all(opts.mode)?;

    if opts.check {
        let text = std::fs::read_to_string(&opts.out).map_err(|e| {
            format!(
                "{}: {e} (run bench_speed once to create it)",
                opts.out.display()
            )
        })?;
        let committed =
            speed::parse_report(&text).map_err(|e| format!("{}: {e}", opts.out.display()))?;
        speed::validate(&committed).map_err(|e| format!("{}: {e}", opts.out.display()))?;
        let bad = regressions(&kernels, &committed.kernels);
        if bad.is_empty() {
            println!(
                "perf-trajectory OK: all {} kernels within {:.0}% of {}",
                KERNELS.len(),
                100.0 * (1.0 - CHECK_RETAIN),
                opts.out.display()
            );
            return Ok(ExitCode::SUCCESS);
        }
        eprintln!("perf-trajectory REGRESSION vs {}:", opts.out.display());
        for line in &bad {
            eprintln!("  {line}");
        }
        return Ok(ExitCode::FAILURE);
    }

    // Preserve (or re-pin) the baseline block.
    let baseline = if opts.rebaseline {
        Some(SpeedBaseline {
            mode: opts.mode.name().to_string(),
            kernels: kernels.clone(),
        })
    } else {
        match std::fs::read_to_string(&opts.out) {
            Ok(text) => {
                let prior = speed::parse_report(&text)
                    .map_err(|e| format!("{}: {e} (fix or --rebaseline)", opts.out.display()))?;
                prior.baseline
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("{}: {e}", opts.out.display())),
        }
    };
    let report = SpeedReport {
        schema: SCHEMA,
        mode: opts.mode.name().to_string(),
        fingerprint: speed::fingerprint(),
        kernels,
        baseline,
    };
    speed::validate(&report)?;
    let rendered = speed::render_report(&report);
    let tmp = opts.out.with_extension("json.tmp");
    std::fs::write(&tmp, rendered.as_bytes()).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &opts.out).map_err(|e| format!("{}: {e}", opts.out.display()))?;
    println!("wrote {}", opts.out.display());
    if let Some(base) = &report.baseline {
        for (cur, old) in report.kernels.iter().zip(&base.kernels) {
            if old.branches_per_sec > 0.0 {
                println!(
                    "  {:<14} {:>6.2}x vs baseline",
                    cur.name,
                    cur.branches_per_sec / old.branches_per_sec
                );
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
