//! `bench_sampling` — full-replay vs phase-sampled-replay comparison.
//!
//! Synthesizes a deterministic phase-alternating trace (phases drawn from
//! four benchmark profiles — the abrupt-phase-change worst case for
//! sampling), then measures the same (mechanism, stream) point both ways:
//!
//! * **full** — every record through the BPU under the shared cycle model,
//! * **sampled** — BBV extraction + k-means once, then only the plan's
//!   representative windows (warmup included), recombined by cluster
//!   weight. Sampling cost is charged to the sampled side, so the reported
//!   speedup is end-to-end honest.
//!
//! `--check` (what CI's `sampling-integrity` job runs) exits 1 unless the
//! sampled path is at least [`CHECK_MIN_SPEEDUP`]× faster and its MPKI
//! error is within the estimate's own reported bound.
//!
//! ```text
//! bench_sampling [--instructions N] [--spec k=K,window=W,...] [--check]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use bench::phased_records;
use bp_pipeline::{stream_name, stream_seed, SimConfig, Simulation};
use bp_trace::{SamplingSpec, TraceSession};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

/// Minimum end-to-end speedup `--check` demands of the sampled path.
const CHECK_MIN_SPEEDUP: f64 = 10.0;

/// Default synthetic-trace length: long enough that full replay dominates
/// the sampled path's fixed costs, short enough for CI.
const DEFAULT_INSTRUCTIONS: u64 = 40_000_000;

/// Phases the synthetic trace cycles through.
const PHASES: [SpecBenchmark; 4] = [
    SpecBenchmark::Mcf,
    SpecBenchmark::Xz,
    SpecBenchmark::Lbm,
    SpecBenchmark::Deepsjeng,
];

const USAGE: &str = "usage: bench_sampling [--instructions N] [--spec k=K,window=W,...] [--check]

  --instructions N  synthetic trace length (default 40000000)
  --spec SPEC       sampling spec (default k=8,window=100000,warmup=2)
  --check           exit 1 unless speedup >= 10x and MPKI error <= bound";

struct Options {
    instructions: u64,
    spec: SamplingSpec,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        instructions: DEFAULT_INSTRUCTIONS,
        spec: SamplingSpec {
            warmup: 2,
            ..SamplingSpec::default()
        },
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instructions" => {
                let v = args.next().ok_or("--instructions needs a value")?;
                opts.instructions = bp_common::parse::positive("instruction count", &v)?;
            }
            "--spec" => {
                let v = args.next().ok_or("--spec needs a value")?;
                opts.spec = SamplingSpec::parse(&v)?;
            }
            "--check" => opts.check = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let dir = std::env::temp_dir().join(format!("hybp-bench-sampling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SimConfig::default_run();

    // Record the synthetic stream under the canonical replay name/seed.
    let seed = stream_seed(cfg.seed, 0, 0);
    let bench = SpecBenchmark::Mcf; // names the stream; phases set the content
    let records = phased_records(seed, &PHASES, opts.spec.window * 8, opts.instructions);
    let session = TraceSession::open(&dir)
        .build()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    let store = session.store();
    store
        .save(
            &stream_name(0, 0, bench),
            seed,
            &records,
            bp_trace::DEFAULT_CHUNK_RECORDS,
        )
        .map_err(|e| format!("save: {e}"))?;
    println!(
        "recorded {} records ({} instructions, {} phases cycling every {} instructions)",
        records.len(),
        opts.instructions,
        PHASES.len(),
        opts.spec.window * 8
    );
    drop(records);

    let builder = || {
        Simulation::builder(Mechanism::hybp_default(), cfg)
            .single_thread(bench)
            .trace_store(Some(std::sync::Arc::clone(store)))
    };

    // Full replay: the ground truth and the time to beat.
    let t0 = Instant::now();
    let full = builder().full_replay().map_err(|e| e.to_string())?.run();
    let full_secs = t0.elapsed().as_secs_f64();
    println!(
        "full replay:    {:>8.3}s  mpki {:.4}  ipc {:.4}  ({} instructions)",
        full_secs,
        full.mpki(),
        full.ipc(),
        full.instructions
    );

    // Sampled replay, charged end to end: sample + seek/warm/measure.
    let t1 = Instant::now();
    let loaded = store
        .load(&stream_name(0, 0, bench), seed)
        .map_err(|e| format!("load: {e}"))?;
    let (plan, stats) = loaded
        .sample(&opts.spec)
        .map_err(|e| format!("sample: {e}"))?;
    let sample_secs = t1.elapsed().as_secs_f64();
    let t2 = Instant::now();
    let sampled = builder()
        .sampled_replay(plan.clone())
        .map_err(|e| e.to_string())?
        .run()
        .map_err(|e| e.to_string())?;
    let replay_secs = t2.elapsed().as_secs_f64();
    let sampled_secs = sample_secs + replay_secs;
    println!(
        "sampled replay: {:>8.3}s  mpki {:.4}  ipc {:.4}  ({} of {} instructions; \
         sample {:.3}s + replay {:.3}s; peak {} records buffered)",
        sampled_secs,
        sampled.estimate.mpki(),
        sampled.estimate.ipc(),
        sampled.replayed_instructions,
        full.instructions,
        sample_secs,
        replay_secs,
        stats.peak_buffered
    );

    let speedup = full_secs / sampled_secs.max(1e-9);
    let err = (sampled.estimate.mpki() - full.mpki()).abs();
    println!(
        "speedup {speedup:.1}x  |  {}/{} windows, coverage {:.2}%, dispersion {:.4}",
        plan.selections.len(),
        plan.total_windows,
        sampled.coverage * 100.0,
        plan.dispersion()
    );
    println!(
        "mpki error {err:.4} (bound {:.4})",
        sampled.error_bound_mpki
    );
    let _ = std::fs::remove_dir_all(&dir);

    if opts.check {
        let mut bad = Vec::new();
        if speedup < CHECK_MIN_SPEEDUP {
            bad.push(format!(
                "speedup {speedup:.1}x below the required {CHECK_MIN_SPEEDUP:.0}x"
            ));
        }
        if err > sampled.error_bound_mpki {
            bad.push(format!(
                "mpki error {err:.4} exceeds the reported bound {:.4}",
                sampled.error_bound_mpki
            ));
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("sampling-integrity FAIL: {b}");
            }
            return Ok(ExitCode::FAILURE);
        }
        println!("sampling-integrity OK: >= {CHECK_MIN_SPEEDUP:.0}x and within the error bound");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
