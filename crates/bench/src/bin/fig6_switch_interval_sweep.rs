//! Figure 6: average performance degradation of Flush, Partition and HyBP
//! on a single-threaded core across context-switch intervals, with Flush's
//! loss decomposed into its context-switch and privilege-change parts.
//!
//! The decomposition runs Flush twice: once with privilege-change flushes
//! (the real mechanism) and once with kernel episodes disabled (isolating
//! the context-switch share).
//!
//! Usage: `fig6_switch_interval_sweep [--scale quick|default|full]`

use bench::{
    all_benchmarks, degradation, single_thread_ipc_at, single_thread_model, Csv, Scale, INTERVALS,
};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "fig6_switch_interval_sweep.csv",
        "mechanism,interval_cycles,avg_degradation,method",
    );
    println!("Figure 6: average degradation vs context-switch interval (single-threaded core)");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "mechanism", "256K", "512K", "1M", "4M", "16M"
    );
    let mechanisms = [
        Mechanism::Flush,
        Mechanism::Partition,
        Mechanism::hybp_default(),
    ];
    let benches = all_benchmarks();
    // Cache baseline models.
    let base_models: Vec<_> = benches
        .iter()
        .map(|&b| single_thread_model(Mechanism::Baseline, b, scale))
        .collect();
    for mech in mechanisms {
        let models: Vec<_> = benches
            .iter()
            .map(|&b| single_thread_model(mech, b, scale))
            .collect();
        print!("{:<12}", mech.to_string());
        for &interval in &INTERVALS {
            let mut losses = Vec::new();
            let mut method = "model";
            for (i, &bench) in benches.iter().enumerate() {
                let (b, _) = single_thread_ipc_at(
                    Mechanism::Baseline,
                    bench,
                    interval,
                    &base_models[i],
                    scale,
                );
                let (m, me) = single_thread_ipc_at(mech, bench, interval, &models[i], scale);
                method = me;
                losses.push(degradation(m, b));
            }
            let avg = losses.iter().sum::<f64>() / losses.len() as f64;
            print!(" {:>8.2}%", avg * 100.0);
            csv.row(format_args!("{},{},{:.5},{}", mech, interval, avg, method));
        }
        println!();
    }

    // Flush decomposition at the default interval: share attributable to
    // privilege-change flushing (timer kernel episodes) vs context switches.
    println!();
    println!("Flush decomposition (share of loss from privilege-change flushing):");
    decompose_flush(&mut csv, scale);
    println!();
    println!("(paper at 16M: Flush 5.1%, Partition 6.3%, HyBP 0.5%; Partition worst cases");
    println!(" fotonik3d 18.2% / xz 19.4%)");
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}

fn decompose_flush(csv: &mut Csv, scale: Scale) {
    use bench::no_switch_config;
    use bp_pipeline::Simulation;
    // At very large intervals Flush's remaining loss is purely the
    // privilege-change part; compare against a run with kernel episodes
    // pushed out of the measurement window.
    let mut priv_losses = Vec::new();
    for bench in [
        SpecBenchmark::Deepsjeng,
        SpecBenchmark::Xz,
        SpecBenchmark::Wrf,
    ] {
        let cfg = no_switch_config(scale);
        let base = Simulation::single_thread(Mechanism::Baseline, bench, cfg)
            .expect("valid config")
            .run()
            .threads[0]
            .ipc();
        let flush = Simulation::single_thread(Mechanism::Flush, bench, cfg)
            .expect("valid config")
            .run()
            .threads[0]
            .ipc();
        let mut no_kernel = cfg;
        no_kernel.kernel_timer_interval = u64::MAX / 4;
        let base_nk = Simulation::single_thread(Mechanism::Baseline, bench, no_kernel)
            .expect("valid config")
            .run()
            .threads[0]
            .ipc();
        let flush_nk = Simulation::single_thread(Mechanism::Flush, bench, no_kernel)
            .expect("valid config")
            .run()
            .threads[0]
            .ipc();
        let total = degradation(flush, base);
        let ctx_only = degradation(flush_nk, base_nk);
        let priv_share = if total > 1e-6 {
            ((total - ctx_only) / total).clamp(0.0, 1.0)
        } else {
            0.0
        };
        println!(
            "  {:<14} total {:>6.2}%  privilege part {:>5.1}%",
            bench.name(),
            total * 100.0,
            priv_share * 100.0
        );
        csv.row(format_args!(
            "Flush-priv-share-{},{},{:.4},direct",
            bench.name(),
            u64::MAX / 4,
            priv_share
        ));
        priv_losses.push(priv_share);
    }
}
