//! Figure 2: IPC loss when the front-end pipeline grows by +2/+4/+8 cycles
//! (the cost of putting an encryption engine on the prediction critical
//! path), per benchmark, with each benchmark's prediction accuracy.
//!
//! Usage: `fig2_pipeline_latency [--scale quick|default|full]`

use bench::{all_benchmarks, degradation, no_switch_config, pct, Csv, Scale};
use bp_pipeline::Simulation;
use hybp::Mechanism;

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "fig2_pipeline_latency.csv",
        "benchmark,accuracy,loss_plus2,loss_plus4,loss_plus8",
    );
    println!("Figure 2: performance impact of extra front-end latency");
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>8}",
        "benchmark", "accuracy", "+2cyc", "+4cyc", "+8cyc"
    );
    let mut avgs = [Vec::new(), Vec::new(), Vec::new()];
    for bench in all_benchmarks() {
        let base_cfg = no_switch_config(scale);
        let base_run = Simulation::single_thread(Mechanism::Baseline, bench, base_cfg)
            .expect("valid config")
            .run();
        let base_ipc = base_run.threads[0].ipc();
        let accuracy = base_run.bpu.direction_accuracy();
        let mut losses = [0.0f64; 3];
        for (k, extra) in [2u32, 4, 8].iter().enumerate() {
            let mut cfg = no_switch_config(scale);
            cfg.core.extra_frontend_cycles = *extra;
            let ipc = Simulation::single_thread(Mechanism::Baseline, bench, cfg)
                .expect("valid config")
                .run()
                .threads[0]
                .ipc();
            losses[k] = degradation(ipc, base_ipc);
            avgs[k].push(losses[k]);
        }
        println!(
            "{:<14} {:>8.1}% {:>8} {:>8} {:>8}",
            bench.name(),
            accuracy * 100.0,
            pct(losses[0]),
            pct(losses[1]),
            pct(losses[2])
        );
        csv.row(format_args!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            bench.name(),
            accuracy,
            losses[0],
            losses[1],
            losses[2]
        ));
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>8}",
        "average",
        "",
        pct(mean(&avgs[0])),
        pct(mean(&avgs[1])),
        pct(mean(&avgs[2]))
    );
    csv.row(format_args!(
        "average,,{:.4},{:.4},{:.4}",
        mean(&avgs[0]),
        mean(&avgs[1]),
        mean(&avgs[2])
    ));
    let path = csv.finish().expect("write results");
    println!("(paper: up to 19.5% at +8 cycles; ~7.8% average at +8)");
    println!("wrote {path}");
}
