//! Thin entry point; the experiment body lives in
//! `bench::experiments::sec6_poc_training` so the `bench_all` driver can run the whole
//! suite in one process with a shared pool and model cache.
//!
//! Usage: `sec6_poc_training [--scale quick|default|full] [--threads N] [--no-cache]`

fn main() {
    bench::exp_main(bench::experiments::sec6_poc_training::run);
}
