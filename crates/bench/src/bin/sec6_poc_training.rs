//! §VI-D proof-of-concept: malicious training of BTB and PHT, baseline vs
//! HyBP, with the paper's iteration/threshold protocol.
//!
//! Usage: `sec6_poc_training [--scale quick|default|full]`
//! (`full` runs the paper's 10 000 iterations.)

use bench::{Csv, Scale};
use bp_attacks::poc::{btb_training_topo, pht_training_topo, CoResidency, PocParams};
use hybp::Mechanism;

fn main() {
    let scale = Scale::from_args();
    let params = match scale {
        Scale::Quick => PocParams {
            iterations: 100,
            rounds_per_iteration: 100,
            success_threshold: 90,
            trainings_per_round: 8,
        },
        Scale::Default => PocParams {
            iterations: 1_000,
            rounds_per_iteration: 100,
            success_threshold: 90,
            trainings_per_round: 8,
        },
        Scale::Full => PocParams::paper(),
    };
    let mut csv = Csv::new(
        "sec6_poc_training.csv",
        "unit,mechanism,training_accuracy,iteration_success_rate",
    );
    println!(
        "§VI-D PoC: {} iterations x {} rounds, success at ≥{} trained rounds",
        params.iterations, params.rounds_per_iteration, params.success_threshold
    );
    println!(
        "{:<5} {:<10} {:>18} {:>24}",
        "unit", "mechanism", "training accuracy", "iteration success rate"
    );
    // The paper's PoC topology: attacker and victim time-share one core.
    for (name, mech) in [
        ("Baseline", Mechanism::Baseline),
        ("HyBP", Mechanism::hybp_default()),
    ] {
        let btb = btb_training_topo(mech, CoResidency::SingleCore, params, 3);
        let pht = pht_training_topo(mech, CoResidency::SingleCore, params, 5);
        println!(
            "{:<5} {:<10} {:>17.1}% {:>23.1}%",
            "BTB",
            name,
            btb.training_accuracy() * 100.0,
            btb.success_rate() * 100.0
        );
        println!(
            "{:<5} {:<10} {:>17.1}% {:>23.1}%",
            "PHT",
            name,
            pht.training_accuracy() * 100.0,
            pht.success_rate() * 100.0
        );
        csv.row(format_args!(
            "BTB,{},{:.4},{:.4}",
            name,
            btb.training_accuracy(),
            btb.success_rate()
        ));
        csv.row(format_args!(
            "PHT,{},{:.4},{:.4}",
            name,
            pht.training_accuracy(),
            pht.success_rate()
        ));
    }
    println!();
    println!("(paper, on a plain-TAGE FPGA platform: baseline 96.5% BTB / 97.2% PHT;");
    println!(" < 1% under the hybrid protection. Our baseline PHT number is lower because");
    println!(" TAGE-SC-L's corrector partially resists training — see EXPERIMENTS.md.)");
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}
