//! Figure 8: performance loss of the Replication mechanism as branch
//! predictor storage scales from +0% to +300%, against HyBP's fixed
//! (0.5% loss, 21.1% storage) point — the crossover the paper places at
//! ≈ +240%.
//!
//! Usage: `fig8_replication_sweep [--scale quick|default|full]`

use bench::{degradation, no_switch_config, Csv, Scale};
use bp_pipeline::Simulation;
use bp_workloads::TABLE_V_MIXES;
use hybp::cost::mechanism_cost;
use hybp::Mechanism;

fn throughput(mech: Mechanism, scale: Scale) -> f64 {
    let mut total = 0.0;
    for mix in TABLE_V_MIXES {
        total += Simulation::smt(mech, mix.pair, no_switch_config(scale))
            .expect("valid config")
            .run()
            .throughput();
    }
    total / TABLE_V_MIXES.len() as f64
}

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "fig8_replication_sweep.csv",
        "mechanism,extra_storage_pct,perf_loss",
    );
    println!("Figure 8: Replication storage sweep vs HyBP (SMT-2, Table V mixes)");
    let baseline = throughput(Mechanism::Baseline, scale);
    let hybp_loss = degradation(throughput(Mechanism::hybp_default(), scale), baseline);
    let hybp_cost = mechanism_cost(&Mechanism::hybp_default(), 2).overhead_fraction();
    println!(
        "HyBP reference point: {:.2}% loss at {:.1}% storage overhead",
        hybp_loss * 100.0,
        hybp_cost * 100.0
    );
    csv.row(format_args!(
        "HyBP,{:.1},{:.5}",
        hybp_cost * 100.0,
        hybp_loss
    ));
    println!("{:>14} {:>10}", "extra storage", "perf loss");
    let mut crossover: Option<u32> = None;
    for pct in [0u32, 40, 80, 120, 160, 200, 240, 300] {
        let mech = Mechanism::Replication {
            extra_storage_pct: pct,
        };
        let loss = degradation(throughput(mech, scale), baseline);
        println!("{:>13}% {:>9.2}%", pct, loss * 100.0);
        csv.row(format_args!("Replication,{},{:.5}", pct, loss));
        if crossover.is_none() && loss <= hybp_loss {
            crossover = Some(pct);
        }
    }
    match crossover {
        Some(p) => println!("Replication matches HyBP's loss at ≈ +{p}% storage (paper: ≈ +240%)"),
        None => println!("Replication never reaches HyBP's loss within the sweep (paper: ≈ +240%)"),
    }
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}
