//! Thin entry point; the experiment body lives in
//! `bench::experiments::fig5` so the `bench_all` driver can run the whole
//! suite in one process with a shared pool and model cache.
//!
//! Usage: `fig5_hybp_per_app [--scale quick|default|full] [--threads N] [--no-cache]`

fn main() {
    bench::exp_main(bench::experiments::fig5::run);
}
