//! Figure 5: normalized IPC of HyBP per application across context-switch
//! intervals (256K..16M cycles).
//!
//! Usage: `fig5_hybp_per_app [--scale quick|default|full]`

use bench::{all_benchmarks, single_thread_ipc_at, single_thread_model, Csv, Scale, INTERVALS};
use hybp::Mechanism;

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "fig5_hybp_per_app.csv",
        "benchmark,interval_cycles,normalized_ipc,method",
    );
    println!("Figure 5: normalized IPC of HyBP under different context-switch intervals");
    print!("{:<14}", "benchmark");
    for i in INTERVALS {
        print!(" {:>9}", format_interval(i));
    }
    println!();
    let mut per_interval_sum = vec![0.0f64; INTERVALS.len()];
    for bench in all_benchmarks() {
        let base = single_thread_model(Mechanism::Baseline, bench, scale);
        let hybp = single_thread_model(Mechanism::hybp_default(), bench, scale);
        print!("{:<14}", bench.name());
        for (k, &interval) in INTERVALS.iter().enumerate() {
            let (b, _) = single_thread_ipc_at(Mechanism::Baseline, bench, interval, &base, scale);
            let (h, method) =
                single_thread_ipc_at(Mechanism::hybp_default(), bench, interval, &hybp, scale);
            let norm = h / b;
            per_interval_sum[k] += norm;
            print!(" {:>9.4}", norm);
            csv.row(format_args!(
                "{},{},{:.5},{}",
                bench.name(),
                interval,
                norm,
                method
            ));
        }
        println!();
    }
    print!("{:<14}", "average");
    for (k, &interval) in INTERVALS.iter().enumerate() {
        let avg = per_interval_sum[k] / all_benchmarks().len() as f64;
        print!(" {:>9.4}", avg);
        csv.row(format_args!("average,{},{:.5},", interval, avg));
    }
    println!();
    println!("(paper: ≥ 0.995 average at the 16M default; down to ~0.79 for the most");
    println!(" switch-sensitive applications at 256K)");
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}

fn format_interval(i: u64) -> String {
    if i >= 1_000_000 {
        format!("{}M", i / 1_000_000)
    } else {
        format!("{}K", i / 1_000)
    }
}
