//! Capture, corrupt, inspect, and sample `.bpt` branch-trace files.
//!
//! Four subcommands:
//!
//! * `record` — generate the stream files an experiment run at a given
//!   scale will replay (`--trace-dir`). Streams are named and seeded
//!   exactly as the simulator builds its generators, so a replayed run is
//!   byte-identical to a generated one.
//! * `corrupt` — apply a deterministic byte-fault spec (the
//!   `HYBP_FAULT_POINTS` I/O grammar: `bitflip@o@b`, `truncate@o`,
//!   `torn@o`, `dup@o@l`) to a trace file, for integrity drills.
//! * `check` — decode a trace file in strict (default) or `--lenient`
//!   mode and report either the typed error (exit 1) or the recovered
//!   record count and health ledger.
//! * `sample` — run phase sampling over a trace file and write the
//!   versioned, CRC-sealed `.bps` phase-plan sidecar next to it (or to
//!   `--out`). Deterministic: the same file and spec produce a
//!   byte-identical sidecar.
//!
//! ```text
//! trace_tool record  --out DIR [--scale S] [--benches a,b] [--margin F] [--smt] [--chunk N]
//! trace_tool corrupt --file F --spec SPEC [--out F2]
//! trace_tool check   --file F [--lenient]
//! trace_tool sample  --file F [--spec k=K,window=W,...] [--out F2]
//! ```

use std::io::BufWriter;
use std::path::PathBuf;
use std::process::ExitCode;

use bench::cli::parse_benches;
use bench::{replay_stream_budget, Scale};
use bp_faults::bytes::ByteFaultPlan;
use bp_pipeline::{kernel_stream_name, kernel_stream_seed, stream_name, stream_seed, SimConfig};
use bp_trace::sampling::SIDECAR_EXTENSION;
use bp_trace::{
    sample_bytes, ReadMode, SamplingSpec, TraceSession, TraceStore, TraceWriter,
    DEFAULT_CHUNK_RECORDS, FILE_EXTENSION,
};
use bp_workloads::profile::SpecBenchmark;
use bp_workloads::WorkloadGenerator;

const USAGE: &str = "usage: trace_tool <record|corrupt|check|sample> [options]
  record  --out DIR [--scale quick|default|full] [--benches a,b,...]
          [--margin F] [--smt] [--chunk N]
  corrupt --file F --spec SPEC [--out F2]
  check   --file F [--lenient]
  sample  --file F [--spec k=K,window=W,dims=D,warmup=U,seed=S,iters=I] [--out F2]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("corrupt") => corrupt(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("sample") => sample(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value following a `--flag` out of `args`.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    for i in 0..args.len() {
        if args[i] == flag {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} requires a value")),
            };
        }
    }
    Ok(None)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn record(args: &[String]) -> Result<ExitCode, String> {
    let out = flag_value(args, "--out")?.ok_or("record requires --out DIR")?;
    let scale = match flag_value(args, "--scale")? {
        Some(v) => Scale::parse(&v)?,
        None => Scale::Default,
    };
    let benches: Vec<SpecBenchmark> = match flag_value(args, "--benches")? {
        Some(v) => parse_benches(&v)?,
        None => SpecBenchmark::ALL.to_vec(),
    };
    let margin: f64 = match flag_value(args, "--margin")? {
        Some(v) => v.parse().map_err(|_| format!("bad --margin value '{v}'"))?,
        None => 1.25,
    };
    if !(margin >= 1.0) {
        return Err("--margin must be >= 1.0 (the budget is a floor, not a target)".into());
    }
    let chunk: usize = match flag_value(args, "--chunk")? {
        Some(v) => v.parse().map_err(|_| format!("bad --chunk value '{v}'"))?,
        None => DEFAULT_CHUNK_RECORDS,
    };
    let hw_threads: usize = if has_flag(args, "--smt") { 2 } else { 1 };

    let dir = PathBuf::from(&out);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {out}: {e}"))?;
    let master = SimConfig::default_run().seed;

    let mut files = 0u64;
    for hw in 0..hw_threads {
        for bench in &benches {
            let budget = (replay_stream_budget(scale, &bench.profile()) as f64 * margin) as u64;
            for sw in 0..2 {
                let name = stream_name(hw, sw, *bench);
                let seed = stream_seed(master, hw, sw);
                let summary = record_stream(&dir, &name, seed, bench.profile(), budget, chunk)?;
                println!(
                    "recorded {name}: {} records, {} chunks, {} bytes",
                    summary.records, summary.chunks, summary.bytes
                );
                files += 1;
            }
        }
        let kernel = SpecBenchmark::Kernel;
        let budget = (replay_stream_budget(scale, &kernel.profile()) as f64 * margin) as u64;
        let name = kernel_stream_name(hw);
        let seed = kernel_stream_seed(master, hw);
        let summary = record_stream(&dir, &name, seed, kernel.profile(), budget, chunk)?;
        println!(
            "recorded {name}: {} records, {} chunks, {} bytes",
            summary.records, summary.chunks, summary.bytes
        );
        files += 1;
    }
    println!(
        "recorded {files} stream(s) into {out} at scale {} (margin {margin})",
        scale.name()
    );
    Ok(ExitCode::SUCCESS)
}

/// Streams one generator into `dir/{name}-{seed:016x}.bpt` until the
/// captured instructions (Σ gap+1) reach `budget`.
fn record_stream(
    dir: &std::path::Path,
    name: &str,
    seed: u64,
    profile: bp_workloads::BenchmarkProfile,
    budget: u64,
    chunk: usize,
) -> Result<bp_trace::WriteSummary, String> {
    let path = dir.join(TraceStore::file_name(name, seed));
    let err = |e: std::io::Error| format!("{}: {e}", path.display());
    let file = std::fs::File::create(&path).map_err(err)?;
    let mut w = TraceWriter::new(BufWriter::new(file), chunk).map_err(err)?;
    let mut gen = WorkloadGenerator::new(profile, seed);
    let mut instructions = 0u64;
    while instructions < budget {
        let r = gen.next_branch();
        w.push(&r).map_err(err)?;
        instructions += u64::from(r.gap) + 1;
    }
    w.finish().map_err(err)
}

fn corrupt(args: &[String]) -> Result<ExitCode, String> {
    let file = flag_value(args, "--file")?.ok_or("corrupt requires --file F")?;
    let spec = flag_value(args, "--spec")?.ok_or("corrupt requires --spec SPEC")?;
    let out = flag_value(args, "--out")?.unwrap_or_else(|| file.clone());
    let plan = ByteFaultPlan::parse(&spec)?;
    let mut bytes = std::fs::read(&file).map_err(|e| format!("{file}: {e}"))?;
    let before = bytes.len();
    let landed = plan.apply(&mut bytes);
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "corrupted {out}: {landed} fault(s) landed, {before} -> {} bytes",
        bytes.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let file = flag_value(args, "--file")?.ok_or("check requires --file F")?;
    let mode = if has_flag(args, "--lenient") {
        ReadMode::Lenient
    } else {
        ReadMode::Strict
    };
    if !file.ends_with(FILE_EXTENSION) {
        eprintln!("note: {file} does not carry the .{FILE_EXTENSION} extension");
    }
    let bytes = std::fs::read(&file).map_err(|e| format!("{file}: {e}"))?;
    match TraceSession::decode(&bytes, mode) {
        Ok((records, health)) => {
            println!("{file}: {} records ({} mode)", records.len(), mode.name());
            println!("health {health}");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("{file}: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Samples a trace into a `.bps` phase-plan sidecar. The output path
/// defaults to the trace path with its extension swapped.
fn sample(args: &[String]) -> Result<ExitCode, String> {
    let file = flag_value(args, "--file")?.ok_or("sample requires --file F")?;
    let spec = match flag_value(args, "--spec")? {
        Some(v) => SamplingSpec::parse(&v)?,
        None => SamplingSpec::default(),
    };
    let mode = if has_flag(args, "--lenient") {
        ReadMode::Lenient
    } else {
        ReadMode::Strict
    };
    let out = match flag_value(args, "--out")? {
        Some(v) => PathBuf::from(v),
        None => PathBuf::from(&file).with_extension(SIDECAR_EXTENSION),
    };
    let bytes = std::fs::read(&file).map_err(|e| format!("{file}: {e}"))?;
    let (plan, stats) = sample_bytes(&bytes, mode, &spec).map_err(|e| format!("{file}: {e}"))?;
    let encoded = plan.encode();
    std::fs::write(&out, &encoded).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "sampled {file}: {} phase(s) over {} windows ({} instructions), \
         coverage {:.2}%, dispersion {:.4}",
        plan.selections.len(),
        plan.total_windows,
        plan.total_instructions,
        plan.coverage() * 100.0,
        plan.dispersion()
    );
    println!(
        "wrote {} ({} bytes; peak {} records buffered while extracting)",
        out.display(),
        encoded.len(),
        stats.peak_buffered
    );
    Ok(ExitCode::SUCCESS)
}
