//! Thin entry point; the experiment body lives in
//! `bench::experiments::sec_fault_matrix` so the `bench_all` driver can run the whole
//! suite in one process with a shared pool and model cache.
//!
//! Usage: `sec_fault_matrix [--scale quick|default|full] [--threads N] [--no-cache]`

fn main() {
    bench::exp_main(bench::experiments::sec_fault_matrix::run);
}
