//! Ablation: the cipher behind the code book, and code book vs inline.
//!
//! Three design questions the paper answers qualitatively, quantified here:
//!
//! 1. With the code book, does the cipher choice cost performance? (No —
//!    the fill happens off the critical path.)
//! 2. What would inlining each cipher cost? (Its latency, per redirect —
//!    ruinous for QARMA/PRINCE, cheap for LLBC/XOR.)
//! 3. Which ciphers survive cryptanalysis? (Only the non-linear ones.)
//!
//! Usage: `ablation_ciphers [--scale quick|default|full]`

use bench::{degradation, no_switch_config, Csv, Scale};
use bp_attacks::linear::break_affine;
use bp_pipeline::Simulation;
use bp_workloads::profile::SpecBenchmark;
use hybp::{CipherKind, HybpConfig, Mechanism};

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "ablation_ciphers.csv",
        "cipher,codebook_loss,inline_loss,linear_break",
    );
    let bench = SpecBenchmark::Deepsjeng;
    let base = Simulation::single_thread(Mechanism::Baseline, bench, no_switch_config(scale))
        .expect("valid config")
        .run()
        .threads[0]
        .ipc();
    println!(
        "Cipher ablation on {} (vs baseline IPC {:.3})",
        bench.name(),
        base
    );
    println!(
        "{:<10} {:>15} {:>13} {:>14}",
        "cipher", "code-book loss", "inline loss", "cryptanalysis"
    );
    for cipher in [
        CipherKind::Qarma,
        CipherKind::Prince,
        CipherKind::Llbc,
        CipherKind::Xor,
    ] {
        let mut cfg = HybpConfig::paper_default();
        cfg.cipher = cipher;
        let codebook =
            Simulation::single_thread(Mechanism::HyBp(cfg), bench, no_switch_config(scale))
                .expect("valid config")
                .run()
                .threads[0]
                .ipc();
        cfg.inline_cipher = true;
        let inline =
            Simulation::single_thread(Mechanism::HyBp(cfg), bench, no_switch_config(scale))
                .expect("valid config")
                .run()
                .threads[0]
                .ipc();
        let broken = break_affine(cipher.build(7).as_ref(), 0, 100, 1).is_some();
        println!(
            "{:<10} {:>14.2}% {:>12.2}% {:>14}",
            cipher.to_string(),
            degradation(codebook, base) * 100.0,
            degradation(inline, base) * 100.0,
            if broken { "BROKEN (affine)" } else { "resists" }
        );
        csv.row(format_args!(
            "{},{:.5},{:.5},{}",
            cipher,
            degradation(codebook, base),
            degradation(inline, base),
            broken
        ));
    }
    println!();
    println!("The design point: only the code book lets a *strong* cipher ride along at");
    println!("zero front-end cost; every inline option either costs cycles or security.");
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}
