//! Thin entry point; the experiment body lives in
//! `bench::experiments::table2` so the `bench_all` driver can run the whole
//! suite in one process with a shared pool and model cache.
//!
//! Usage: `table2_threat_model [--scale quick|default|full] [--threads N] [--no-cache]`

fn main() {
    bench::exp_main(bench::experiments::table2::run);
}
