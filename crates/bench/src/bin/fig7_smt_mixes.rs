//! Figure 7: throughput (a) and Hmean fairness (b) degradation of the
//! isolation mechanisms on an SMT-2 core, per Table V mix.
//!
//! Usage: `fig7_smt_mixes [--scale quick|default|full]`

use std::collections::HashMap;

use bench::{degradation, no_switch_config, Csv, Scale};
use bp_pipeline::Simulation;
use bp_workloads::profile::SpecBenchmark;
use bp_workloads::TABLE_V_MIXES;
use hybp::Mechanism;

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "fig7_smt_mixes.csv",
        "mix,class,mechanism,throughput_degradation,hmean_degradation",
    );
    let mechanisms = [
        Mechanism::Baseline,
        Mechanism::Partition,
        Mechanism::replication_default(),
        Mechanism::hybp_default(),
    ];

    // Solo IPCs per (mechanism, benchmark), cached.
    let mut solo: HashMap<(String, SpecBenchmark), f64> = HashMap::new();
    let mut solo_ipc = |mech: Mechanism, b: SpecBenchmark, scale: Scale| -> f64 {
        *solo.entry((mech.to_string(), b)).or_insert_with(|| {
            Simulation::single_thread(mech, b, no_switch_config(scale))
                .expect("valid config")
                .run()
                .threads[0]
                .ipc()
        })
    };

    println!("Figure 7: SMT throughput and Hmean fairness degradation per mix");
    println!(
        "{:<28} {:<7} {:>22} {:>22}",
        "mix", "class", "throughput degradation", "hmean degradation"
    );
    let mut agg: HashMap<String, (Vec<f64>, Vec<f64>)> = HashMap::new();
    for mix in TABLE_V_MIXES {
        // Baseline reference for this mix.
        let base = Simulation::smt(Mechanism::Baseline, mix.pair, no_switch_config(scale))
            .expect("valid config")
            .run();
        let base_thr = base.throughput();
        let base_solo: Vec<f64> = mix
            .pair
            .iter()
            .map(|&b| solo_ipc(Mechanism::Baseline, b, scale))
            .collect();
        let base_hmean = match base.hmean_fairness(&base_solo) {
            Ok(h) => h,
            Err(e) => {
                eprintln!(
                    "skipping mix {}: baseline fairness unavailable ({e})",
                    mix.label()
                );
                continue;
            }
        };
        for mech in mechanisms.iter().skip(1) {
            let run = Simulation::smt(*mech, mix.pair, no_switch_config(scale))
                .expect("valid config")
                .run();
            let thr_deg = degradation(run.throughput(), base_thr);
            let mech_solo: Vec<f64> = mix
                .pair
                .iter()
                .map(|&b| solo_ipc(*mech, b, scale))
                .collect();
            let hmean = match run.hmean_fairness(&mech_solo) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!(
                        "skipping {} on mix {}: fairness unavailable ({e})",
                        mech.name(),
                        mix.label()
                    );
                    continue;
                }
            };
            let hmean_deg = degradation(hmean, base_hmean);
            println!(
                "{:<28} {:<7} {:>11} ({:<9}) {:>11} ({:<9})",
                mix.label(),
                mix.class().to_string(),
                format!("{:+.2}%", thr_deg * 100.0),
                mech.name(),
                format!("{:+.2}%", hmean_deg * 100.0),
                mech.name()
            );
            csv.row(format_args!(
                "{},{},{},{:.5},{:.5}",
                mix,
                mix.class(),
                mech,
                thr_deg,
                hmean_deg
            ));
            let e = agg.entry(mech.to_string()).or_default();
            e.0.push(thr_deg);
            e.1.push(hmean_deg);
        }
    }
    println!();
    for mech in mechanisms.iter().skip(1) {
        let (thr, hm) = &agg[&mech.to_string()];
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &Vec<f64>| v.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "{:<22} avg throughput loss {:>6.2}% (max {:>6.2}%), avg hmean loss {:>6.2}% (max {:>6.2}%)",
            mech.to_string(),
            mean(thr) * 100.0,
            max(thr) * 100.0,
            mean(hm) * 100.0,
            max(hm) * 100.0
        );
        csv.row(format_args!(
            "average,,{},{:.5},{:.5}",
            mech,
            mean(thr),
            mean(hm)
        ));
    }
    println!();
    println!("(paper: HyBP avg 0.2% / max 3.8% throughput loss vs Partition avg 4.4% /");
    println!(" max 12.6%; Partition Hmean up to ~17% on H-ILP mixes, HyBP ≤ 2.3%)");
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}
