//! `bench_all`: run the entire experiment suite — every table, figure and
//! security campaign — in one process with a shared worker pool and a
//! shared on-disk model cache, then print a per-experiment wall-clock
//! table and record the perf baseline in `results/bench_speed.json`.
//!
//! Experiments run one after another (each is internally parallel across
//! its sweep grid, which is where the work is), so stdout stays readable
//! and CSVs are byte-identical to the standalone binaries at any
//! `--threads` value. The suite is crash-safe and self-describing:
//!
//! * every experiment runs under `catch_unwind` and (optionally) a
//!   `--deadline-secs` watchdog, so one wedged or panicking experiment
//!   costs that experiment, never the suite;
//! * after *each* experiment the driver journals
//!   `results/run_report.json` (atomically, via tmp + rename) with the
//!   per-experiment status, every lost sweep point, retry counts, and
//!   cache quarantine/store-failure deltas — a crash mid-suite leaves a
//!   valid report covering everything finished so far;
//! * `--resume` skips experiments the previous report (same scale)
//!   recorded as clean and whose CSV is still present and not partial,
//!   so an interrupted suite run finishes by re-running only what it
//!   must.
//!
//! The process exits non-zero if anything failed, panicked, timed out,
//! degraded (lost sweep points), or did not write its expected CSV.
//!
//! With `--telemetry DIR` every experiment additionally exports a sorted,
//! schema-valid telemetry JSONL file into `DIR` (validated line-by-line
//! after each experiment), and the journal carries per-experiment
//! telemetry summaries. Capture disables the model cache so every point
//! actually simulates and the export is deterministic at any `--threads`.
//!
//! Usage: `bench_all [--scale quick|default|full] [--threads N]
//! [--no-cache] [--telemetry DIR] [--resume] [--deadline-secs N]`

#![allow(clippy::disallowed_types)] // suite wall-clock table: diagnostics, not results

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::cache::CacheStats;
use bench::{cli, experiments, Ctx, SweepReport};
use bp_common::telemetry::parse_jsonl_line;

/// Option summary for the suite driver (the shared options plus the
/// suite-only ones).
const SUITE_USAGE: &str = "options: [--scale quick|default|full] [--threads N] [--no-cache] \
     [--telemetry DIR] [--resume] [--deadline-secs N]";

/// Journal location, relative to the working directory.
const REPORT_PATH: &str = "results/run_report.json";

/// Terminal status of one experiment in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Ran clean and wrote its CSV.
    Ok,
    /// Ran to completion but lost sweep points; its CSV is partial.
    Degraded,
    /// Returned an error (or did not write its expected CSV).
    Failed,
    /// Panicked outside any supervised sweep.
    Panicked,
    /// Exceeded `--deadline-secs`; its worker thread was abandoned.
    Deadline,
    /// Skipped by `--resume` (clean in the previous report, CSV intact).
    Skipped,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Degraded => "degraded",
            Status::Failed => "failed",
            Status::Panicked => "panicked",
            Status::Deadline => "deadline",
            Status::Skipped => "skipped",
        }
    }

    /// Whether this status makes the suite exit non-zero.
    fn is_failure(self) -> bool {
        !matches!(self, Status::Ok | Status::Skipped)
    }
}

/// Per-experiment telemetry export summary (present only with
/// `--telemetry` and at least one flushed file).
struct TelemetrySummary {
    /// JSONL file path, as written.
    file: String,
    /// Events written across this experiment's flushes.
    events: usize,
    /// Events lost to ring overflow (0 in any healthy run).
    dropped: u64,
}

/// Outcome of one experiment, journal-ready.
struct Outcome {
    name: &'static str,
    seconds: f64,
    status: Status,
    /// Human-readable cause for non-ok statuses.
    reason: Option<String>,
    /// Sweep reports drained from the supervisor for this experiment.
    sweeps: Vec<SweepReport>,
    /// Cache-counter movement during this experiment.
    quarantined: u64,
    store_failures: u64,
    /// Telemetry export, when capture was enabled and the experiment
    /// flushed a file.
    telemetry: Option<TelemetrySummary>,
}

impl Outcome {
    fn retried_attempts(&self) -> u32 {
        self.sweeps.iter().map(|s| s.retried_attempts).sum()
    }

    fn recovered(&self) -> usize {
        self.sweeps.iter().map(|s| s.recovered).sum()
    }
}

/// Suite-only options, stripped from argv before the shared parser runs.
struct SuiteOptions {
    resume: bool,
    deadline: Option<Duration>,
}

/// Splits argv into suite-only options and the remainder for
/// [`cli::parse`].
fn split_args(args: &[String]) -> Result<(SuiteOptions, Vec<String>), String> {
    let mut resume = false;
    let mut deadline = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--deadline-secs" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--deadline-secs needs a value; {SUITE_USAGE}"))?;
                let secs = v.parse::<u64>().ok().filter(|&s| s >= 1).ok_or_else(|| {
                    format!("invalid deadline '{v}': expected a positive whole number of seconds")
                })?;
                deadline = Some(Duration::from_secs(secs));
                i += 2;
            }
            other => {
                rest.push(other.to_string());
                i += 1;
            }
        }
    }
    Ok((SuiteOptions { resume, deadline }, rest))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (suite, rest) = match split_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let opts = match cli::parse(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}; suite {SUITE_USAGE}");
            std::process::exit(2);
        }
    };
    let ctx = Arc::new(Ctx::from_options(opts));
    let exps = experiments::all();
    let prior_report = if suite.resume {
        std::fs::read_to_string(REPORT_PATH).ok()
    } else {
        None
    };
    println!(
        "bench_all: {} experiments, scale {}, {} worker thread(s), cache {}{}{}",
        exps.len(),
        ctx.scale.name(),
        ctx.pool.threads(),
        if ctx.cache.is_enabled() {
            "on"
        } else {
            "off (--no-cache)"
        },
        match suite.deadline {
            Some(d) => format!(", deadline {}s/experiment", d.as_secs()),
            None => String::new(),
        },
        if suite.resume {
            if prior_report.is_some() {
                ", resuming from results/run_report.json"
            } else {
                ", --resume with no previous report (running everything)"
            }
        } else {
            ""
        }
    );
    if !ctx.fault_points.is_empty() {
        println!(
            "fault injection: {} harness point fault(s) armed via HYBP_FAULT_POINTS",
            ctx.fault_points.entries().len()
        );
    }
    if let Some(dir) = &ctx.telemetry_dir {
        println!(
            "telemetry: exporting JSONL to {} (model cache disabled for determinism)",
            dir.display()
        );
    }

    let suite_start = Instant::now();
    let mut outcomes: Vec<Outcome> = Vec::new();
    for exp in &exps {
        println!();
        println!("=== {} ===", exp.name);
        if let Some(report) = &prior_report {
            if can_skip(report, exp.name, ctx.scale.name(), exp.csv, &ctx) {
                println!("(clean in previous run, CSV intact — skipped; rerun without --resume)");
                outcomes.push(Outcome {
                    name: exp.name,
                    seconds: 0.0,
                    status: Status::Skipped,
                    reason: None,
                    sweeps: Vec::new(),
                    quarantined: 0,
                    store_failures: 0,
                    telemetry: None,
                });
                journal(&ctx, &outcomes, exps.len());
                continue;
            }
        }
        // Discard any sweep reports recorded by a worker thread abandoned
        // at a previous experiment's deadline — they belong to nobody.
        let _ = ctx.supervisor.drain();
        let cache_before = ctx.cache.stats();
        let start = Instant::now();
        let result = run_guarded(&ctx, exp.run, suite.deadline);
        let seconds = start.elapsed().as_secs_f64();
        let sweeps = ctx.supervisor.drain();
        let lost: usize = sweeps.iter().map(SweepReport::lost).sum();
        let (status, reason) = match result {
            Guarded::Done(Ok(())) => match exp.csv {
                Some(csv) if !ctx.results_dir.join(csv).is_file() => {
                    (Status::Failed, Some(format!("did not write results/{csv}")))
                }
                _ => (Status::Ok, None),
            },
            Guarded::Done(Err(e)) if lost > 0 => (Status::Degraded, Some(e.to_string())),
            Guarded::Done(Err(e)) => (Status::Failed, Some(e.to_string())),
            Guarded::Panicked => (
                Status::Panicked,
                Some("panicked outside any supervised sweep".to_string()),
            ),
            Guarded::TimedOut => (
                Status::Deadline,
                Some(format!(
                    "exceeded the {}s deadline; worker thread abandoned",
                    suite.deadline.map(|d| d.as_secs()).unwrap_or(0)
                )),
            ),
        };
        // Collect (and validate) what this experiment exported; drop any
        // unflushed events so they can never leak into the next
        // experiment's file.
        let flushes = ctx.telemetry.drain_flushes();
        let _ = ctx.telemetry.discard_pending();
        let mut telemetry = None;
        let (mut status, mut reason) = (status, reason);
        if ctx.telemetry.is_enabled() && !flushes.is_empty() {
            let mut events = 0usize;
            let mut dropped = 0u64;
            let mut schema_errors = Vec::new();
            for f in &flushes {
                events += f.events;
                dropped += f.dropped;
                if let Err(e) = validate_jsonl(&f.path) {
                    schema_errors.push(format!("{}: {e}", f.path.display()));
                }
            }
            telemetry = Some(TelemetrySummary {
                file: flushes[0].path.display().to_string(),
                events,
                dropped,
            });
            if !schema_errors.is_empty() && !status.is_failure() {
                status = Status::Failed;
                reason = Some(format!(
                    "telemetry export invalid: {}",
                    schema_errors.join("; ")
                ));
            }
        }
        if let Some(r) = &reason {
            eprintln!("{}: {} — {}", exp.name, status.as_str(), r);
        }
        let cache_after = ctx.cache.stats();
        outcomes.push(Outcome {
            name: exp.name,
            seconds,
            status,
            reason,
            sweeps,
            quarantined: cache_after.quarantined - cache_before.quarantined,
            store_failures: cache_after.store_failures - cache_before.store_failures,
            telemetry,
        });
        journal(&ctx, &outcomes, exps.len());
    }
    let total_seconds = suite_start.elapsed().as_secs_f64();
    let cache = ctx.cache.stats();

    println!();
    println!("=== suite summary ===");
    println!("{:<32} {:>9}  status", "experiment", "seconds");
    for o in &outcomes {
        println!(
            "{:<32} {:>9.2}  {}{}",
            o.name,
            o.seconds,
            o.status.as_str(),
            match &o.reason {
                Some(r) => format!(": {r}"),
                None => String::new(),
            }
        );
    }
    println!(
        "{:<32} {:>9.2}  ({} threads, cache {} hits / {} misses, {:.0}% hit rate)",
        "total",
        total_seconds,
        ctx.pool.threads(),
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );
    report_cache_health(&cache);

    match write_speed_json(&ctx, &outcomes, total_seconds) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write results/bench_speed.json: {e}"),
    }
    println!("journal at {REPORT_PATH}");

    let failures = outcomes.iter().filter(|o| o.status.is_failure()).count();
    if failures > 0 {
        eprintln!("{failures} experiment(s) did not run clean (see {REPORT_PATH})");
        std::process::exit(1);
    }
}

/// What the guarded runner observed.
enum Guarded {
    Done(bench::ExpResult),
    Panicked,
    TimedOut,
}

/// Runs one experiment under `catch_unwind`, optionally racing a
/// deadline. With a deadline the experiment runs on its own thread; on
/// timeout that thread is *abandoned* (it keeps the suite process alive
/// no longer than the remaining experiments, and any sweep reports it
/// records late are discarded before the next experiment starts).
fn run_guarded(
    ctx: &Arc<Ctx>,
    run: fn(&Ctx) -> bench::ExpResult,
    deadline: Option<Duration>,
) -> Guarded {
    let Some(deadline) = deadline else {
        return match catch_unwind(AssertUnwindSafe(|| run(ctx))) {
            Ok(r) => Guarded::Done(r),
            Err(_) => Guarded::Panicked,
        };
    };
    let (tx, rx) = mpsc::channel();
    let ctx2 = Arc::clone(ctx);
    std::thread::spawn(move || {
        let outcome = match catch_unwind(AssertUnwindSafe(|| run(&ctx2))) {
            Ok(r) => Guarded::Done(r),
            Err(_) => Guarded::Panicked,
        };
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(deadline) {
        Ok(outcome) => outcome,
        Err(_) => Guarded::TimedOut,
    }
}

/// Whether `--resume` may skip this experiment: the previous report must
/// be for the same scale and record the experiment as clean (ok, or
/// already skipped by an earlier resume), and the expected CSV must still
/// exist and not carry a `# partial:` header.
///
/// The report is our own hand-rolled JSON with one experiment per line,
/// so a line-based scan is exact, not heuristic.
fn can_skip(report: &str, name: &str, scale: &str, csv: Option<&str>, ctx: &Ctx) -> bool {
    if !report.contains(&format!("\"scale\": \"{scale}\"")) {
        return false;
    }
    let name_tag = format!("\"name\": \"{name}\"");
    let clean = report.lines().any(|line| {
        line.contains(&name_tag)
            && (line.contains("\"status\": \"ok\"") || line.contains("\"status\": \"skipped\""))
    });
    if !clean {
        return false;
    }
    match csv {
        None => true,
        Some(csv) => {
            let path = ctx.results_dir.join(csv);
            match std::fs::read_to_string(&path) {
                Ok(text) => !text.lines().next().unwrap_or("#").starts_with('#'),
                Err(_) => false,
            }
        }
    }
}

/// Validates one exported telemetry JSONL file line-by-line against the
/// event schema. An empty export is invalid: every finished experiment
/// emits at least its `("bench", "points")` mark.
fn validate_jsonl(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        lines += 1;
    }
    if lines == 0 {
        return Err("empty export".to_string());
    }
    Ok(())
}

/// Prints quarantine/store-failure counters when they moved — a cache
/// that has stopped persisting or is shedding corrupt entries should be
/// visible in the summary, not only in the journal.
fn report_cache_health(cache: &CacheStats) {
    if cache.quarantined > 0 {
        println!(
            "cache: quarantined {} corrupt entr{} (see results/cache/quarantine/)",
            cache.quarantined,
            if cache.quarantined == 1 { "y" } else { "ies" }
        );
    }
    if cache.store_failures > 0 {
        println!(
            "cache: {} store failure(s) — results were computed but not persisted",
            cache.store_failures
        );
    }
}

/// Minimal JSON string escaping for reason/message fields.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Writes the journal after each experiment: tmp + rename, so a crash
/// mid-write can never leave a truncated `run_report.json`.
fn journal(ctx: &Ctx, outcomes: &[Outcome], total_experiments: usize) {
    let body = render_report(ctx, outcomes, total_experiments);
    if let Err(e) = write_atomic(REPORT_PATH, &body) {
        eprintln!("failed to journal {REPORT_PATH}: {e}");
    }
}

fn write_atomic(path: &str, body: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let tmp = format!("{path}.tmp{}", std::process::id());
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Renders the run report. One experiment per line — [`can_skip`]'s
/// resume scan depends on that shape.
fn render_report(ctx: &Ctx, outcomes: &[Outcome], total_experiments: usize) -> String {
    let cache = ctx.cache.stats();
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"scale\": \"{}\",", ctx.scale.name());
    let _ = writeln!(s, "  \"threads\": {},", ctx.pool.threads());
    if let Some(dir) = &ctx.telemetry_dir {
        let _ = writeln!(
            s,
            "  \"telemetry_dir\": \"{}\",",
            escape(&dir.display().to_string())
        );
    }
    let _ = writeln!(s, "  \"total_experiments\": {total_experiments},");
    let _ = writeln!(s, "  \"completed_experiments\": {},", outcomes.len());
    let _ = writeln!(
        s,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"store_failures\": {}, \
         \"quarantined\": {} }},",
        cache.hits, cache.misses, cache.store_failures, cache.quarantined
    );
    let _ = writeln!(s, "  \"experiments\": [");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        let mut line = format!(
            "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"status\": \"{}\"",
            o.name,
            o.seconds,
            o.status.as_str()
        );
        if let Some(r) = &o.reason {
            let _ = write!(line, ", \"reason\": \"{}\"", escape(r));
        }
        let _ = write!(
            line,
            ", \"retried_attempts\": {}, \"recovered\": {}, \"cache_quarantined\": {}, \
             \"cache_store_failures\": {}",
            o.retried_attempts(),
            o.recovered(),
            o.quarantined,
            o.store_failures
        );
        // Telemetry fields stay inline on the experiment's line: the
        // resume scan and CI's grep contracts are line-based.
        if let Some(t) = &o.telemetry {
            let _ = write!(
                line,
                ", \"telemetry_file\": \"{}\", \"telemetry_events\": {}, \
                 \"telemetry_dropped\": {}",
                escape(&t.file),
                t.events,
                t.dropped
            );
        }
        let failed: Vec<String> = o
            .sweeps
            .iter()
            .flat_map(|sweep| {
                sweep.failures.iter().map(|f| {
                    format!(
                        "{{ \"sweep\": \"{}\", \"index\": {}, \"attempts\": {}, \
                         \"panicked\": {}, \"message\": \"{}\" }}",
                        escape(&sweep.label),
                        f.index,
                        f.attempts,
                        f.panicked,
                        escape(&f.message)
                    )
                })
            })
            .collect();
        let _ = write!(
            line,
            ", \"failed_points\": [{}] }}{comma}",
            failed.join(", ")
        );
        let _ = writeln!(s, "{line}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Emits the perf baseline: suite and per-experiment wall-clock, thread
/// count, and cache hit rate. Hand-rolled JSON — every value is a number,
/// a bool, or a name under our control (plus `reason` strings, which get
/// minimal escaping).
fn write_speed_json(
    ctx: &Ctx,
    outcomes: &[Outcome],
    total_seconds: f64,
) -> std::io::Result<String> {
    let cache = ctx.cache.stats();
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": 1,");
    // Same code fingerprint as the root BENCH_speed.json (both derive it
    // from CODE_SALT), so the two perf artifacts can be matched to one
    // model revision.
    let _ = writeln!(s, "  \"fingerprint\": \"{}\",", bench::speed::fingerprint());
    let _ = writeln!(s, "  \"scale\": \"{}\",", ctx.scale.name());
    let _ = writeln!(s, "  \"threads\": {},", ctx.pool.threads());
    let _ = writeln!(s, "  \"cache_enabled\": {},", ctx.cache.is_enabled());
    let _ = writeln!(
        s,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    );
    let _ = writeln!(s, "  \"total_seconds\": {total_seconds:.3},");
    let _ = writeln!(s, "  \"experiments\": [");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        match &o.reason {
            None => {
                let _ = writeln!(
                    s,
                    "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"ok\": {} }}{comma}",
                    o.name,
                    o.seconds,
                    !o.status.is_failure()
                );
            }
            Some(reason) => {
                let _ = writeln!(
                    s,
                    "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"ok\": false, \
                     \"reason\": \"{}\" }}{comma}",
                    o.name,
                    o.seconds,
                    escape(reason)
                );
            }
        }
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    std::fs::create_dir_all("results").and_then(|()| {
        let path = "results/bench_speed.json";
        std::fs::write(path, s)?;
        Ok(path.to_string())
    })
}
