//! `bench_all`: run the entire experiment suite — every table, figure and
//! security campaign — in one process with a shared worker pool and a
//! shared on-disk model cache, then print a per-experiment wall-clock
//! table and record the perf baseline in `results/bench_speed.json`.
//!
//! Experiments run one after another (each is internally parallel across
//! its sweep grid, which is where the work is), so stdout stays readable
//! and CSVs are byte-identical to the standalone binaries at any
//! `--threads` value. A panicking or failing experiment is reported and
//! the suite continues; the process exits non-zero if anything failed or
//! an expected CSV is missing.
//!
//! Usage: `bench_all [--scale quick|default|full] [--threads N] [--no-cache]`

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Instant;

use bench::experiments;
use bench::Ctx;

/// Outcome of one experiment in the suite.
struct Outcome {
    name: &'static str,
    seconds: f64,
    /// `None` = ran clean; `Some(reason)` = failed.
    failure: Option<String>,
}

fn main() {
    let ctx = Ctx::from_cli();
    let exps = experiments::all();
    println!(
        "bench_all: {} experiments, scale {}, {} worker thread(s), cache {}",
        exps.len(),
        ctx.scale.name(),
        ctx.pool.threads(),
        if ctx.cache.is_enabled() {
            "on"
        } else {
            "off (--no-cache)"
        }
    );

    let suite_start = Instant::now();
    let mut outcomes: Vec<Outcome> = Vec::new();
    for exp in &exps {
        println!();
        println!("=== {} ===", exp.name);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| (exp.run)(&ctx)));
        let seconds = start.elapsed().as_secs_f64();
        let failure = match result {
            Ok(Ok(())) => match exp.csv {
                Some(csv) if !Path::new("results").join(csv).is_file() => {
                    Some(format!("did not write results/{csv}"))
                }
                _ => None,
            },
            Ok(Err(e)) => Some(e.to_string()),
            Err(_) => Some("panicked".to_string()),
        };
        outcomes.push(Outcome {
            name: exp.name,
            seconds,
            failure,
        });
    }
    let total_seconds = suite_start.elapsed().as_secs_f64();
    let cache = ctx.cache.stats();

    println!();
    println!("=== suite summary ===");
    println!("{:<32} {:>9}  {}", "experiment", "seconds", "status");
    for o in &outcomes {
        println!(
            "{:<32} {:>9.2}  {}",
            o.name,
            o.seconds,
            match &o.failure {
                None => "ok",
                Some(reason) => reason.as_str(),
            }
        );
    }
    println!(
        "{:<32} {:>9.2}  ({} threads, cache {} hits / {} misses, {:.0}% hit rate)",
        "total",
        total_seconds,
        ctx.pool.threads(),
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );

    match write_speed_json(&ctx, &outcomes, total_seconds) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write results/bench_speed.json: {e}"),
    }

    let failures = outcomes.iter().filter(|o| o.failure.is_some()).count();
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}

/// Emits the perf baseline: suite and per-experiment wall-clock, thread
/// count, and cache hit rate. Hand-rolled JSON — every value is a number,
/// a bool, or a name under our control (plus `reason` strings, which get
/// minimal escaping).
fn write_speed_json(
    ctx: &Ctx,
    outcomes: &[Outcome],
    total_seconds: f64,
) -> std::io::Result<String> {
    let cache = ctx.cache.stats();
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"scale\": \"{}\",", ctx.scale.name());
    let _ = writeln!(s, "  \"threads\": {},", ctx.pool.threads());
    let _ = writeln!(s, "  \"cache_enabled\": {},", ctx.cache.is_enabled());
    let _ = writeln!(
        s,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    );
    let _ = writeln!(s, "  \"total_seconds\": {total_seconds:.3},");
    let _ = writeln!(s, "  \"experiments\": [");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        match &o.failure {
            None => {
                let _ = writeln!(
                    s,
                    "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"ok\": true }}{comma}",
                    o.name, o.seconds
                );
            }
            Some(reason) => {
                let escaped = reason.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = writeln!(
                    s,
                    "    {{ \"name\": \"{}\", \"seconds\": {:.3}, \"ok\": false, \
                     \"reason\": \"{escaped}\" }}{comma}",
                    o.name, o.seconds
                );
            }
        }
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    std::fs::create_dir_all("results")?;
    let path = "results/bench_speed.json";
    std::fs::write(path, s)?;
    Ok(path.to_string())
}
