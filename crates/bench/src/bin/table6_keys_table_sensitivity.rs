//! Table VI: HyBP performance overhead as the randomized index keys table
//! grows from 1K to 32K entries, at 4M- and 16M-cycle context-switch
//! intervals. Bigger tables take longer to refresh, so branches run on
//! stale keys (pure accuracy cost) for longer after each switch.
//!
//! Usage: `table6_keys_table_sensitivity [--scale quick|default|full]`

use bench::{all_benchmarks, degradation, single_thread_ipc_at, single_thread_model, Csv, Scale};
use hybp::{HybpConfig, Mechanism};

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "table6_keys_table_sensitivity.csv",
        "keys_entries,interval_cycles,avg_overhead",
    );
    let sizes = [1024usize, 2048, 4096, 16 * 1024, 32 * 1024];
    let intervals = [4_000_000u64, 16_000_000];
    // A representative benchmark subset keeps the run laptop-sized; the
    // effect being measured (stale-key window length) is workload-light.
    let benches = &all_benchmarks()[..6];
    println!("Table VI: overhead vs randomized index keys table size");
    println!(
        "{:>9} {:>12} {:>12}",
        "entries", "4M interval", "16M interval"
    );
    let base_models: Vec<_> = benches
        .iter()
        .map(|&b| single_thread_model(Mechanism::Baseline, b, scale))
        .collect();
    for &entries in &sizes {
        let mech = Mechanism::HyBp(HybpConfig::with_keys_entries(entries));
        let models: Vec<_> = benches
            .iter()
            .map(|&b| single_thread_model(mech, b, scale))
            .collect();
        print!("{:>9}", entries);
        for &interval in &intervals {
            let mut losses = Vec::new();
            for (i, &bench) in benches.iter().enumerate() {
                let (b, _) = single_thread_ipc_at(
                    Mechanism::Baseline,
                    bench,
                    interval,
                    &base_models[i],
                    scale,
                );
                let (h, _) = single_thread_ipc_at(mech, bench, interval, &models[i], scale);
                losses.push(degradation(h, b));
            }
            let avg = losses.iter().sum::<f64>() / losses.len() as f64;
            print!(" {:>11.2}%", avg * 100.0);
            csv.row(format_args!("{},{},{:.5}", entries, interval, avg));
        }
        println!();
    }
    println!();
    println!("(paper: 1.4%..1.9% at 4M and 0.5%..0.9% at 16M as tables grow 1K→32K)");
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}
