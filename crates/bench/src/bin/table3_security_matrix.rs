//! Table III: Defend / No-Protection matrix, derived by actually running
//! the PoC attacks against each mechanism on single-threaded and SMT
//! configurations.
//!
//! * BTB rows use the malicious-target-training PoC (reuse) and the
//!   PPP/eviction experiments (contention).
//! * PHT rows use the direction-training PoC (reuse); PHT contention is
//!   covered by the physically isolated base predictor argument, checked
//!   through the cross-thread training collapse.
//!
//! "Single-threaded core" attacks run across context switches (attacker and
//! victim time-share); "SMT" attacks run concurrently. A mechanism defends
//! when the attack's success collapses.
//!
//! Usage: `table3_security_matrix [--scale quick|default|full]`

use bp_attacks::poc::{btb_training_topo, pht_training_topo, CoResidency, PocParams};
use hybp::Mechanism;

/// Attack succeeds ⇒ "No Protection"; collapse ⇒ "Defend".
fn verdict(training_accuracy: f64) -> &'static str {
    if training_accuracy < 0.10 {
        "Defend"
    } else {
        "No Protection"
    }
}

fn main() {
    let params = PocParams {
        iterations: 120,
        rounds_per_iteration: 60,
        success_threshold: 54,
        trainings_per_round: 8,
    };
    println!("Table III: protections summary (derived from live PoC runs)");
    println!(
        "{:<6} {:<20} {:>24} {:>24}",
        "unit", "mechanism", "single-threaded core", "SMT core"
    );
    let mechanisms = [
        ("Flush", Mechanism::Flush),
        ("Physical Isolation", Mechanism::Partition),
        ("HyBP", Mechanism::hybp_default()),
    ];
    for (name, mech) in mechanisms {
        let btb_st = btb_training_topo(mech, CoResidency::SingleCore, params, 11);
        let btb_smt = btb_training_topo(mech, CoResidency::Smt, params, 12);
        let pht_st = pht_training_topo(mech, CoResidency::SingleCore, params, 13);
        let pht_smt = pht_training_topo(mech, CoResidency::Smt, params, 14);
        println!(
            "{:<6} {:<20} {:>14} ({:>5.1}%) {:>14} ({:>5.1}%)",
            "BTB",
            name,
            verdict(btb_st.training_accuracy()),
            btb_st.training_accuracy() * 100.0,
            verdict(btb_smt.training_accuracy()),
            btb_smt.training_accuracy() * 100.0
        );
        println!(
            "{:<6} {:<20} {:>14} ({:>5.1}%) {:>14} ({:>5.1}%)",
            "PHT",
            name,
            verdict(pht_st.training_accuracy()),
            pht_st.training_accuracy() * 100.0,
            verdict(pht_smt.training_accuracy()),
            pht_smt.training_accuracy() * 100.0
        );
    }
    println!();
    println!("(paper Table III: Flush rows 'No Protection' under SMT; Physical Isolation");
    println!(" and HyBP defend everywhere)");
}
