//! Thin entry point; the experiment body lives in
//! `bench::experiments::serve_soak` so the `bench_all` driver can run the whole
//! suite in one process with a shared pool and model cache.
//!
//! Usage: `serve_soak [--scale quick|default|full] [--threads N] [--no-cache]`

fn main() {
    bench::exp_main(bench::experiments::serve_soak::run);
}
