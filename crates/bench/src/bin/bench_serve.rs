//! `bench_serve` — the prediction-service soak driver.
//!
//! Runs the deterministic closed-loop soak from `bench::serve` and
//! maintains the root-level `BENCH_serve.json` resilience trajectory:
//!
//! * default: re-measure and rewrite the live `soak` block, *preserving*
//!   the pinned `baseline` block from the existing file (if any);
//! * `--rebaseline`: additionally pin the fresh run as the new baseline;
//! * `--check`: measure, compare against the committed file, and exit 1
//!   unless every deterministic counter matches **exactly** and
//!   predictions/sec retained at least 50% — this is what CI's
//!   `serve-resilience` job runs on the clean pass (no file writes). The
//!   throughput floor is looser than `bench_speed`'s because an
//!   end-to-end multi-threaded service soak wobbles more on shared
//!   runners than a single-kernel loop; the counters carry the exact
//!   regression authority.
//!
//! When `HYBP_FAULT_POINTS` carries service faults (`shard-panic`,
//! `refresh-stall`, `queue-overload`), the run switches to resilience
//! mode: the pinned file is never read or written, shard snapshots go to
//! `results/serve_snapshots/` so restarts exercise the disk-restore path,
//! and the journal (default `results/serve_journal.txt`) names every shed
//! and lost request. The process then exits non-zero iff the injected
//! faults disrupted service — which is exactly what CI's fault pass
//! asserts. Exact accounting is enforced unconditionally in both modes.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::serve::{self, Mode, ServeBaseline, ServeBenchReport, SCHEMA};
use bp_common::pool::Pool;
use bp_common::telemetry::Health;
use bp_faults::points::PointFaultPlan;

/// Fraction of the committed predictions/sec the soak must retain under
/// `--check`. Looser than `bench_speed`'s 0.75: the soak is end-to-end
/// and multi-threaded, so runner-to-runner variance is wider; exact
/// counter equality is the precise half of the gate.
const CHECK_RETAIN: f64 = 0.5;

const USAGE: &str = "usage: bench_serve [--quick|--full] [--threads N] [--rebaseline] [--check] [--out PATH] [--journal PATH]

  --quick        100k-request soak (default; what CI runs)
  --full         1M-request soak (trajectory-quality numbers)
  --threads N    worker-pool threads (default 4; counters are invariant)
  --rebaseline   also pin this run as the new `baseline` block
  --check        compare against the committed file instead of writing:
                 exit 1 unless counters match exactly and predictions/sec
                 retained >=50%
  --out PATH     report path (default: BENCH_serve.json at the repo root)
  --journal PATH shed/lost journal path (default: results/serve_journal.txt)

Service faults from HYBP_FAULT_POINTS (shard-panic/refresh-stall/queue-overload)
switch the run to resilience mode: no pinned-file IO, journal written, exit
non-zero iff the faults disrupted service.";

struct Options {
    mode: Mode,
    threads: usize,
    rebaseline: bool,
    check: bool,
    out: PathBuf,
    journal: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        mode: Mode::Quick,
        threads: 4,
        rebaseline: false,
        check: false,
        out: PathBuf::from("BENCH_serve.json"),
        journal: PathBuf::from("results/serve_journal.txt"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.mode = Mode::Quick,
            "--full" => opts.mode = Mode::Full,
            "--threads" => {
                let v = args.next().ok_or("--threads needs a count")?;
                opts.threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--threads: `{v}` is not a positive integer"))?;
            }
            "--rebaseline" => opts.rebaseline = true,
            "--check" => opts.check = true,
            "--out" => opts.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--journal" => {
                opts.journal = PathBuf::from(args.next().ok_or("--journal needs a path")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.check && opts.rebaseline {
        return Err("--check and --rebaseline are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let faults = PointFaultPlan::from_env()
        .map_err(|e| format!("HYBP_FAULT_POINTS: {e} (refusing to run with a garbled plan)"))?;
    let resilience = !faults.serve_faults().is_empty();
    println!(
        "bench_serve: {} mode, {} threads, fingerprint {}{}",
        opts.mode.name(),
        opts.threads,
        serve::fingerprint(),
        if resilience {
            " [resilience: service faults armed]"
        } else {
            ""
        }
    );
    let pool = Pool::new(opts.threads);
    let snapshot_dir = resilience.then(|| PathBuf::from("results/serve_snapshots"));
    let (report, soak) = serve::run_soak(opts.mode, &faults, &pool, snapshot_dir)?;
    let c = &soak.counters;
    println!(
        "soak: {} requests -> {} answered, {} shed (overload {}, deadline {}, failed {}), {} lost",
        c.requests,
        c.answered,
        c.shed_overload + c.shed_deadline + c.shed_failed,
        c.shed_overload,
        c.shed_deadline,
        c.shed_failed,
        c.lost
    );
    println!(
        "      {} restarts, {} degraded answers in {} windows, p99 {} cycles, {:.0} predictions/sec",
        c.restarts, c.degraded_answers, c.degraded_windows, c.p99_latency_cycles,
        soak.predictions_per_sec
    );
    serve::write_journal(&opts.journal, &report)
        .map_err(|e| format!("{}: {e}", opts.journal.display()))?;
    println!("journal: {}", opts.journal.display());

    if resilience {
        let readiness = report.readiness();
        let failed = readiness.count(Health::Failed);
        let disrupted = c.lost > 0
            || c.restarts > 0
            || c.degraded_windows > 0
            || c.shed_failed > 0
            || failed > 0;
        if disrupted {
            eprintln!(
                "serve-resilience: injected faults disrupted service ({} lost, {} restarts, {} degraded windows, {} shards failed) — journal accounts every request",
                c.lost, c.restarts, c.degraded_windows, failed
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("serve-resilience: armed faults never fired (idle shard/ordinal?) — service undisturbed");
        return Ok(ExitCode::SUCCESS);
    }

    if opts.check {
        let text = std::fs::read_to_string(&opts.out).map_err(|e| {
            format!(
                "{}: {e} (run bench_serve once to create it)",
                opts.out.display()
            )
        })?;
        let committed =
            serve::parse_report(&text).map_err(|e| format!("{}: {e}", opts.out.display()))?;
        serve::validate(&committed).map_err(|e| format!("{}: {e}", opts.out.display()))?;
        if committed.mode != opts.mode.name() {
            return Err(format!(
                "{}: committed mode `{}` vs requested `{}` — rerun with the matching mode",
                opts.out.display(),
                committed.mode,
                opts.mode.name()
            ));
        }
        let mut bad = Vec::new();
        if committed.soak.counters != soak.counters {
            bad.push(format!(
                "deterministic counters drifted:\n  committed {:?}\n  current   {:?}",
                committed.soak.counters, soak.counters
            ));
        }
        let floor = committed.soak.predictions_per_sec * CHECK_RETAIN;
        if soak.predictions_per_sec < floor {
            bad.push(format!(
                "throughput: {:.0} predictions/sec vs committed {:.0} (floor {:.0})",
                soak.predictions_per_sec, committed.soak.predictions_per_sec, floor
            ));
        }
        if bad.is_empty() {
            println!(
                "serve-trajectory OK: counters exact, throughput within {:.0}% of {}",
                100.0 * (1.0 - CHECK_RETAIN),
                opts.out.display()
            );
            return Ok(ExitCode::SUCCESS);
        }
        eprintln!("serve-trajectory REGRESSION vs {}:", opts.out.display());
        for line in &bad {
            eprintln!("  {line}");
        }
        return Ok(ExitCode::FAILURE);
    }

    // Preserve (or re-pin) the baseline block.
    let baseline = if opts.rebaseline {
        Some(ServeBaseline {
            mode: opts.mode.name().to_string(),
            soak: soak.clone(),
        })
    } else {
        match std::fs::read_to_string(&opts.out) {
            Ok(text) => {
                let prior = serve::parse_report(&text)
                    .map_err(|e| format!("{}: {e} (fix or --rebaseline)", opts.out.display()))?;
                prior.baseline
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("{}: {e}", opts.out.display())),
        }
    };
    let doc = ServeBenchReport {
        schema: SCHEMA,
        mode: opts.mode.name().to_string(),
        fingerprint: serve::fingerprint(),
        soak,
        baseline,
    };
    serve::validate(&doc)?;
    let rendered = serve::render_report(&doc);
    let tmp = opts.out.with_extension("json.tmp");
    std::fs::write(&tmp, rendered.as_bytes()).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &opts.out).map_err(|e| format!("{}: {e}", opts.out.display()))?;
    println!("wrote {}", opts.out.display());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
