//! §VII-F context: the performance value of modern branch prediction —
//! TAGE-SC-L versus a decades-old tournament predictor on the same core.
//! The paper quotes ≈ 5.4% in its setup, arguing that single-digit
//! protection overheads squander real generational gains.
//!
//! Usage: `sec7f_tage_vs_tournament [--scale quick|default|full]`

use bench::{all_benchmarks, degradation, no_switch_config, Csv, Scale};
use bp_pipeline::Simulation;
use hybp::Mechanism;

fn main() {
    let scale = Scale::from_args();
    let mut csv = Csv::new(
        "sec7f_tage_vs_tournament.csv",
        "benchmark,tage_ipc,tournament_ipc,tage_gain",
    );
    println!("§VII-F: TAGE-SC-L vs tournament predictor (unprotected baseline core)");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "benchmark", "TAGE IPC", "tourney IPC", "TAGE gain"
    );
    let mut gains = Vec::new();
    for bench in all_benchmarks() {
        let cfg = no_switch_config(scale);
        let tage = Simulation::single_thread(Mechanism::Baseline, bench, cfg)
            .expect("valid config")
            .run()
            .threads[0]
            .ipc();
        let tourney = Simulation::single_thread(Mechanism::TournamentBaseline, bench, cfg)
            .expect("valid config")
            .run()
            .threads[0]
            .ipc();
        let gain = -degradation(tage, tourney); // positive = TAGE faster
        gains.push(gain);
        println!(
            "{:<14} {:>10.3} {:>12.3} {:>9.2}%",
            bench.name(),
            tage,
            tourney,
            gain * 100.0
        );
        csv.row(format_args!(
            "{},{:.4},{:.4},{:.5}",
            bench.name(),
            tage,
            tourney,
            gain
        ));
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!(
        "{:<14} {:>10} {:>12} {:>9.2}%",
        "average",
        "",
        "",
        avg * 100.0
    );
    csv.row(format_args!("average,,,{:.5}", avg));
    println!();
    println!("(paper: ≈ 5.4% average gain from TAGE-SC-L over the tournament predictor)");
    let path = csv.finish().expect("write results");
    println!("wrote {path}");
}
