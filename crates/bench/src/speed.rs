//! `bench::speed` — kernel-level hot-path micro-benchmarks with a pinned
//! perf trajectory.
//!
//! The suite times the three hot loops the paper's overhead story rests on
//! — TAGE lookup/update, QARMA-64 block encryption, the codec content-XOR —
//! plus the end-to-end predict-resolve-redirect cycle driven through
//! [`bp_pipeline::CycleDriver`]. Results land in the root-level
//! `BENCH_speed.json` (written by the `bench_speed` bin), one entry per
//! kernel with `{branches_per_sec, ns_per_op, p99_ns}`, alongside a pinned
//! `baseline` block recording the pre-optimization run so every later PR is
//! accountable for the trajectory. The CI `perf-trajectory` job replays the
//! quick suite and fails on >25% branches/sec regression in any kernel.
//!
//! This is the *measurement* half of the hot-path campaign; the report JSON
//! is line-oriented on purpose so [`parse_report`] can stay a strict,
//! dependency-free scanner (same policy as `run_report.json`). The wall
//! clock only ever feeds diagnostics and these throughput numbers — never
//! simulated results — hence the file-wide determinism-time waiver below.

#![allow(clippy::disallowed_types)] // Instant, waived file-wide in bp-lint below

// bp-lint: allow-file(determinism-time) reason="micro-benchmark harness: wall-clock timings are the deliverable (BENCH_speed.json throughput trajectory) and diagnostics, never simulation results"
use std::time::{Duration, Instant};

use bp_common::{Addr, Asid, Vmid};
use bp_crypto::{Qarma64, TweakableBlockCipher};
use bp_pipeline::{SimConfig, Simulation};
use bp_predictors::codec::{TableCodec, TableId, TableUnit};
use bp_predictors::tage::{Tage, TageConfig};
use bp_workloads::profile::SpecBenchmark;
use bp_workloads::WorkloadGenerator;
use hybp::{HybpCodec, HybpConfig, Mechanism};

use crate::cache::CODE_SALT;
use crate::timing::{black_box, Bench};

/// The kernels the trajectory pins, in canonical report order.
pub const KERNELS: [&str; 5] = [
    "tage_predict",
    "tage_update",
    "qarma_encrypt",
    "codec_xor",
    "full_cycle",
];

/// Report schema version (bump on any layout change).
pub const SCHEMA: u32 = 1;

/// Measurement budget per kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CI-sized: ~0.2 s measured per kernel.
    Quick,
    /// Trajectory-quality: 1 s measured per kernel.
    Full,
}

impl Mode {
    /// Canonical name as written to / parsed from the report.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Full => "full",
        }
    }

    /// Parses a canonical mode name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "quick" => Ok(Mode::Quick),
            "full" => Ok(Mode::Full),
            other => Err(format!("unknown speed mode `{other}` (quick|full)")),
        }
    }

    fn warmup(self) -> Duration {
        match self {
            Mode::Quick => Duration::from_millis(60),
            Mode::Full => Duration::from_millis(300),
        }
    }

    fn measure(self) -> Duration {
        match self {
            Mode::Quick => Duration::from_millis(200),
            Mode::Full => Duration::from_secs(1),
        }
    }
}

/// One kernel's measured throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel name (one of [`KERNELS`]).
    pub name: String,
    /// Sustained operations per wall-clock second (median batch). For every
    /// kernel one "op" is one branch-equivalent: a predict, a predict+update
    /// pair, one block encryption, one content XOR, or one full cycle.
    pub branches_per_sec: f64,
    /// Median nanoseconds per op.
    pub ns_per_op: f64,
    /// 99th-percentile batch cost in nanoseconds per op (tail scheduler /
    /// refresh interference).
    pub p99_ns: f64,
}

/// The pinned pre-optimization reference run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedBaseline {
    /// Mode the baseline was captured under.
    pub mode: String,
    /// Per-kernel baseline numbers, same order as the live kernels.
    pub kernels: Vec<KernelResult>,
}

/// The full `BENCH_speed.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedReport {
    /// Schema version ([`SCHEMA`]).
    pub schema: u32,
    /// Measurement mode of the live `kernels` block.
    pub mode: String,
    /// Config fingerprint linking this file to `results/bench_speed.json`
    /// (both derive it from the same [`CODE_SALT`]).
    pub fingerprint: String,
    /// The live measurement.
    pub kernels: Vec<KernelResult>,
    /// The pinned pre-optimization run, if one was recorded.
    pub baseline: Option<SpeedBaseline>,
}

/// Deterministic fingerprint tying `BENCH_speed.json` to
/// `results/bench_speed.json`: FNV-1a 64 over the cache's [`CODE_SALT`], so
/// both files change identity together when the simulation core is declared
/// changed.
pub fn fingerprint() -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in CODE_SALT.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn p99(sorted_samples: &[f64], median: f64) -> f64 {
    if sorted_samples.is_empty() {
        return median;
    }
    let idx = (sorted_samples.len() * 99) / 100;
    sorted_samples[idx.min(sorted_samples.len() - 1)]
}

fn kernel_bench(name: &str, mode: Mode) -> Bench {
    Bench::new(name.to_string())
        .warmup_for(mode.warmup())
        .measure_for(mode.measure())
}

fn finish<T>(name: &str, mode: Mode, f: impl FnMut() -> T) -> KernelResult {
    let t = Instant::now();
    let (report, samples) = kernel_bench(name, mode).run_sampled(f);
    let result = KernelResult {
        name: name.to_string(),
        branches_per_sec: report.per_second(),
        ns_per_op: report.median_ns,
        p99_ns: p99(&samples, report.median_ns),
    };
    println!(
        "{:<14} {:>14.0} ops/s   median {:>9.2} ns   p99 {:>9.2} ns   ({} iters, {:.2}s)",
        name,
        result.branches_per_sec,
        result.ns_per_op,
        result.p99_ns,
        report.iterations,
        t.elapsed().as_secs_f64(),
    );
    result
}

/// Deterministic branch-stream snapshot for the predictor kernels: `n`
/// (pc, taken) pairs drawn from the synthetic mcf generator, replayed
/// cyclically so the measured loop contains no generator cost.
fn branch_snapshot(n: usize) -> Vec<(Addr, bool)> {
    let mut gen = WorkloadGenerator::new(SpecBenchmark::Mcf.profile(), 0x5EED_CA11);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let rec = gen.next_branch();
        if rec.kind.is_conditional() {
            out.push((rec.pc, rec.taken));
        }
    }
    out
}

fn paper_codec() -> Result<HybpCodec, String> {
    let mut codec = HybpCodec::new(&HybpConfig::paper_default(), 1, 0x5EED_0001)
        .map_err(|e| format!("paper_default codec: {e}"))?;
    codec.set_context(0, Asid::new(1), Vmid::new(0));
    Ok(codec)
}

fn tage_predict_kernel(mode: Mode) -> Result<KernelResult, String> {
    let mut tage = Tage::new(TageConfig::paper_scl());
    let mut codec = paper_codec()?;
    let stream = branch_snapshot(8192);
    // Populate the tables so the measured lookups exercise real tag
    // matches, provider selection and allocation pressure.
    let mut now = 1u64;
    for &(pc, taken) in &stream {
        tage.predict_slot(pc, 0, &mut codec, now);
        tage.update_slot(pc, 0, taken, &mut codec, now);
        now += 1;
    }
    let mut i = 0usize;
    Ok(finish("tage_predict", mode, move || {
        let (pc, _) = stream[i];
        i = (i + 1) % stream.len();
        now += 1;
        black_box(tage.predict_slot(pc, 0, &mut codec, now).taken)
    }))
}

fn tage_update_kernel(mode: Mode) -> Result<KernelResult, String> {
    let mut tage = Tage::new(TageConfig::paper_scl());
    let mut codec = paper_codec()?;
    let stream = branch_snapshot(8192);
    let mut now = 1u64;
    for &(pc, taken) in &stream {
        tage.predict_slot(pc, 0, &mut codec, now);
        tage.update_slot(pc, 0, taken, &mut codec, now);
        now += 1;
    }
    let mut i = 0usize;
    // One op = one predict+update pair: update consumes the lookup state the
    // preceding predict stashed, exactly as the BPU drives it.
    Ok(finish("tage_update", mode, move || {
        let (pc, taken) = stream[i];
        i = (i + 1) % stream.len();
        now += 1;
        tage.predict_slot(pc, 0, &mut codec, now);
        tage.update_slot(pc, 0, taken, &mut codec, now);
    }))
}

fn qarma_encrypt_kernel(mode: Mode) -> KernelResult {
    let cipher = Qarma64::from_seed(0x5EED_0002);
    let mut pt = 0u64;
    finish("qarma_encrypt", mode, move || {
        pt = pt.wrapping_add(0x9E37_79B9_7F4A_7C15);
        black_box(cipher.encrypt(black_box(pt), 0x0123_4567_89AB_CDEF))
    })
}

fn codec_xor_kernel(mode: Mode) -> Result<KernelResult, String> {
    let mut codec = paper_codec()?;
    // L2 BTB is a randomized table, so this measures the real content path.
    let table = TableId::new(TableUnit::Btb, 2);
    let mut x = 0u64;
    Ok(finish("codec_xor", mode, move || {
        x = x.wrapping_add(0x9E37_79B9);
        black_box(codec.encode_content(table, black_box(x)))
    }))
}

fn full_cycle_kernel(mode: Mode) -> Result<KernelResult, String> {
    let mut driver = Simulation::builder(Mechanism::hybp_default(), SimConfig::quick_test())
        .single_thread(SpecBenchmark::Mcf)
        .build_cycle_driver()
        .map_err(|e| format!("full_cycle driver: {e}"))?;
    let result = finish("full_cycle", mode, move || black_box(driver.drive_one()));
    Ok(result)
}

/// Runs all five kernels in [`KERNELS`] order.
///
/// # Errors
///
/// Returns a message when a kernel's fixture cannot be built (invalid
/// codec or simulation config — not expected with the defaults used here).
pub fn run_all(mode: Mode) -> Result<Vec<KernelResult>, String> {
    Ok(vec![
        tage_predict_kernel(mode)?,
        tage_update_kernel(mode)?,
        qarma_encrypt_kernel(mode),
        codec_xor_kernel(mode)?,
        full_cycle_kernel(mode)?,
    ])
}

/// Checks a report's structural invariants: schema version, the exact
/// kernel set in canonical order (live and baseline blocks both), and
/// finite, strictly positive numbers everywhere.
pub fn validate(report: &SpeedReport) -> Result<(), String> {
    if report.schema != SCHEMA {
        return Err(format!(
            "schema {} unsupported (expected {SCHEMA})",
            report.schema
        ));
    }
    Mode::parse(&report.mode)?;
    if report.fingerprint.is_empty() {
        return Err("empty fingerprint".to_string());
    }
    validate_kernels("kernels", &report.kernels)?;
    if let Some(base) = &report.baseline {
        Mode::parse(&base.mode)?;
        validate_kernels("baseline.kernels", &base.kernels)?;
    }
    Ok(())
}

fn validate_kernels(what: &str, kernels: &[KernelResult]) -> Result<(), String> {
    if kernels.len() != KERNELS.len() {
        return Err(format!(
            "{what}: {} kernels (expected {})",
            kernels.len(),
            KERNELS.len()
        ));
    }
    for (k, expect) in kernels.iter().zip(KERNELS) {
        if k.name != expect {
            return Err(format!(
                "{what}: found `{}` where `{expect}` belongs",
                k.name
            ));
        }
        for (field, v) in [
            ("branches_per_sec", k.branches_per_sec),
            ("ns_per_op", k.ns_per_op),
            ("p99_ns", k.p99_ns),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "{what}.{}.{field}: non-positive or non-finite",
                    k.name
                ));
            }
        }
    }
    Ok(())
}

fn render_kernel(k: &KernelResult, indent: &str, comma: &str) -> String {
    format!(
        "{indent}{{ \"name\": \"{}\", \"branches_per_sec\": {:.1}, \"ns_per_op\": {:.3}, \"p99_ns\": {:.3} }}{comma}\n",
        k.name, k.branches_per_sec, k.ns_per_op, k.p99_ns
    )
}

/// Renders the report as the canonical line-oriented JSON (one kernel per
/// line — [`parse_report`] depends on this layout).
pub fn render_report(report: &SpeedReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", report.schema));
    out.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    out.push_str(&format!("  \"fingerprint\": \"{}\",\n", report.fingerprint));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in report.kernels.iter().enumerate() {
        let comma = if i + 1 < report.kernels.len() {
            ","
        } else {
            ""
        };
        out.push_str(&render_kernel(k, "    ", comma));
    }
    out.push_str("  ],\n");
    match &report.baseline {
        None => out.push_str("  \"baseline\": null\n"),
        Some(base) => {
            out.push_str("  \"baseline\": {\n");
            out.push_str(&format!("    \"mode\": \"{}\",\n", base.mode));
            out.push_str("    \"kernels\": [\n");
            for (i, k) in base.kernels.iter().enumerate() {
                let comma = if i + 1 < base.kernels.len() { "," } else { "" };
                out.push_str(&render_kernel(k, "      ", comma));
            }
            out.push_str("    ]\n");
            out.push_str("  }\n");
        }
    }
    out.push_str("}\n");
    out
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    let rest = line
        .trim()
        .strip_prefix(&format!("\"{key}\": \""))
        .ok_or_else(|| format!("expected string field `{key}`, got `{}`", line.trim()))?;
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated string in `{key}`"))?;
    Ok(rest[..end].to_string())
}

fn num_str(s: &str, key: &str) -> Result<f64, String> {
    s.trim()
        .trim_end_matches(',')
        .parse::<f64>()
        .map_err(|e| format!("bad number in `{key}`: `{}` ({e})", s.trim()))
}

fn kernel_line(line: &str) -> Result<KernelResult, String> {
    let t = line.trim().trim_end_matches(',');
    let t = t
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("expected one-line kernel object, got `{}`", line.trim()))?;
    let mut name = None;
    let mut bps = None;
    let mut ns = None;
    let mut p99v = None;
    for part in t.split(", \"") {
        let part = part.trim().trim_start_matches('"');
        let (key, value) = part
            .split_once("\":")
            .ok_or_else(|| format!("malformed kernel field `{part}`"))?;
        let value = value.trim();
        match key {
            "name" => {
                name = Some(
                    value
                        .trim_start_matches('"')
                        .trim_end_matches(',')
                        .trim_end_matches('"')
                        .to_string(),
                )
            }
            "branches_per_sec" => bps = Some(num_str(value, key)?),
            "ns_per_op" => ns = Some(num_str(value, key)?),
            "p99_ns" => p99v = Some(num_str(value, key)?),
            other => return Err(format!("unknown kernel field `{other}`")),
        }
    }
    Ok(KernelResult {
        name: name.ok_or("kernel object missing `name`")?,
        branches_per_sec: bps.ok_or("kernel object missing `branches_per_sec`")?,
        ns_per_op: ns.ok_or("kernel object missing `ns_per_op`")?,
        p99_ns: p99v.ok_or("kernel object missing `p99_ns`")?,
    })
}

/// Strictly parses the canonical report layout emitted by
/// [`render_report`]. Any structural deviation — wrong field order,
/// unknown fields, truncation — is an error naming the offending line.
pub fn parse_report(text: &str) -> Result<SpeedReport, String> {
    fn next<'a>(lines: &mut std::str::Lines<'a>, what: &str) -> Result<&'a str, String> {
        lines.next().ok_or_else(|| format!("missing {what}"))
    }
    fn expect(lines: &mut std::str::Lines<'_>, want: &str) -> Result<(), String> {
        match lines.next() {
            Some(l) if l.trim() == want => Ok(()),
            Some(l) => Err(format!("expected `{want}`, got `{}`", l.trim())),
            None => Err(format!("expected `{want}`, got end of file")),
        }
    }
    let mut lines = text.lines();
    expect(&mut lines, "{")?;
    let schema_line = next(&mut lines, "schema line")?;
    let schema = schema_line
        .trim()
        .strip_prefix("\"schema\": ")
        .ok_or_else(|| format!("expected schema field, got `{}`", schema_line.trim()))?
        .trim_end_matches(',')
        .parse::<u32>()
        .map_err(|e| format!("bad schema number: {e}"))?;
    let mode = str_field(next(&mut lines, "mode line")?, "mode")?;
    let fingerprint = str_field(next(&mut lines, "fingerprint line")?, "fingerprint")?;
    expect(&mut lines, "\"kernels\": [")?;
    let mut kernels = Vec::new();
    let baseline_head = loop {
        let line = next(&mut lines, "kernels array terminator")?;
        if line.trim() == "]," {
            break next(&mut lines, "baseline line")?;
        }
        kernels.push(kernel_line(line)?);
    };
    let baseline = match baseline_head.trim() {
        "\"baseline\": null" => None,
        "\"baseline\": {" => {
            let base_mode = str_field(next(&mut lines, "baseline mode")?, "mode")?;
            expect(&mut lines, "\"kernels\": [")?;
            let mut base_kernels = Vec::new();
            loop {
                let line = next(&mut lines, "baseline kernels terminator")?;
                if line.trim() == "]" {
                    break;
                }
                base_kernels.push(kernel_line(line)?);
            }
            expect(&mut lines, "}")?;
            Some(SpeedBaseline {
                mode: base_mode,
                kernels: base_kernels,
            })
        }
        other => return Err(format!("expected baseline block, got `{other}`")),
    };
    expect(&mut lines, "}")?;
    if let Some(extra) = lines.next() {
        if !extra.trim().is_empty() {
            return Err(format!("trailing content after report: `{}`", extra.trim()));
        }
    }
    Ok(SpeedReport {
        schema,
        mode,
        fingerprint,
        kernels,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Values must be exactly representable at the renderer's `{:.1}`/`{:.3}`
    // precision so render → parse round-trips bit-for-bit.
    fn fake_kernels(scale: f64) -> Vec<KernelResult> {
        KERNELS
            .iter()
            .enumerate()
            .map(|(i, name)| KernelResult {
                name: name.to_string(),
                branches_per_sec: scale * (i + 1) as f64 * 1e6,
                ns_per_op: 12.5 - i as f64,
                p99_ns: 20.5 - i as f64,
            })
            .collect()
    }

    #[test]
    fn render_parse_roundtrip_with_baseline() {
        let report = SpeedReport {
            schema: SCHEMA,
            mode: "quick".to_string(),
            fingerprint: fingerprint(),
            kernels: fake_kernels(3.0),
            baseline: Some(SpeedBaseline {
                mode: "quick".to_string(),
                kernels: fake_kernels(1.0),
            }),
        };
        let text = render_report(&report);
        let parsed = parse_report(&text).expect("roundtrip parses");
        assert_eq!(parsed, report);
        validate(&parsed).expect("roundtrip validates");
    }

    #[test]
    fn render_parse_roundtrip_without_baseline() {
        let report = SpeedReport {
            schema: SCHEMA,
            mode: "full".to_string(),
            fingerprint: fingerprint(),
            kernels: fake_kernels(2.0),
            baseline: None,
        };
        let parsed = parse_report(&render_report(&report)).expect("parses");
        assert_eq!(parsed, report);
        validate(&parsed).expect("validates");
    }

    #[test]
    fn parse_rejects_truncation_and_junk() {
        let report = SpeedReport {
            schema: SCHEMA,
            mode: "quick".to_string(),
            fingerprint: "f".repeat(16),
            kernels: fake_kernels(1.0),
            baseline: None,
        };
        let text = render_report(&report);
        let cut = &text[..text.len() - 3];
        assert!(parse_report(cut).is_err());
        let junk = text.replace("\"ns_per_op\"", "\"ns_per_opX\"");
        assert!(parse_report(&junk).is_err());
    }

    #[test]
    fn validate_rejects_wrong_kernel_set() {
        let mut report = SpeedReport {
            schema: SCHEMA,
            mode: "quick".to_string(),
            fingerprint: fingerprint(),
            kernels: fake_kernels(1.0),
            baseline: None,
        };
        report.kernels.swap(0, 1);
        assert!(validate(&report).is_err());
        report.kernels.swap(0, 1);
        report.kernels[2].ns_per_op = f64::NAN;
        assert!(validate(&report).is_err());
    }

    #[test]
    fn fingerprint_is_stable_hex() {
        let f = fingerprint();
        assert_eq!(f.len(), 16);
        assert_eq!(f, fingerprint());
        assert!(f.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn quick_kernels_measure_nonzero() {
        // One real (tiny) measurement pass over the cheapest kernel to keep
        // the harness honest without minutes of test time.
        let r = qarma_encrypt_kernel(Mode::Quick);
        assert!(r.branches_per_sec > 0.0);
        assert!(r.ns_per_op > 0.0);
        assert!(r.p99_ns >= r.ns_per_op * 0.5);
    }
}
