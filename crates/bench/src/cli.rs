//! Shared command-line handling and run context for the experiment
//! binaries.
//!
//! Every binary accepts the same three options:
//!
//! * `--scale quick|default|full` — run-length preset ([`Scale`]),
//! * `--threads N` — worker count for the parallel sweeps (default: the
//!   `HYBP_THREADS` environment variable, else
//!   [`std::thread::available_parallelism`]),
//! * `--no-cache` — bypass the on-disk model cache entirely.
//!
//! Unknown options and malformed values are fatal usage errors (exit
//! code 2) with a message listing what is valid — a typo must never
//! silently fall back to a default and quietly measure the wrong thing.

use bp_common::pool::Pool;

use crate::cache::ModelCache;
use crate::{ExpResult, Scale};

/// Option summary printed with every usage error.
pub const USAGE: &str = "options: [--scale quick|default|full] [--threads N] [--no-cache]";

/// Parsed command-line options, before any pool/cache is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliOptions {
    /// Run-length preset.
    pub scale: Scale,
    /// Worker count (≥ 1, already resolved against the environment).
    pub threads: usize,
    /// Whether `--no-cache` was given.
    pub no_cache: bool,
}

/// Parses a `--threads`/`HYBP_THREADS` value.
///
/// # Errors
///
/// Rejects anything that is not a positive integer, with a message
/// naming the offending value.
pub fn parse_threads(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid thread count '{v}': expected a positive integer"
        )),
    }
}

/// Resolves the worker count when `--threads` is absent: a set
/// `HYBP_THREADS` must parse (same strictness as the flag), otherwise the
/// machine's available parallelism is used.
fn threads_from_env() -> Result<usize, String> {
    match std::env::var("HYBP_THREADS") {
        Ok(v) => parse_threads(&v).map_err(|e| format!("HYBP_THREADS: {e}")),
        Err(_) => Ok(Pool::machine_sized().threads()),
    }
}

/// Parses the shared options from `args` (argv without the program name).
///
/// # Errors
///
/// Returns a usage message on any unknown option, missing value, unknown
/// scale, or non-positive thread count.
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut scale = Scale::Default;
    let mut threads: Option<usize> = None;
    let mut no_cache = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--scale needs a value; {USAGE}"))?;
                scale = Scale::parse(v)?;
                i += 2;
            }
            "--threads" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--threads needs a value; {USAGE}"))?;
                threads = Some(parse_threads(v)?);
                i += 2;
            }
            "--no-cache" => {
                no_cache = true;
                i += 1;
            }
            other => return Err(format!("unknown option '{other}'; {USAGE}")),
        }
    }
    let threads = match threads {
        Some(t) => t,
        None => threads_from_env()?,
    };
    Ok(CliOptions {
        scale,
        threads,
        no_cache,
    })
}

/// Everything an experiment body needs: the scale preset, the worker
/// pool, and the shared on-disk model cache. One `Ctx` serves a whole
/// `bench_all` suite run, so cache statistics aggregate across
/// experiments.
#[derive(Debug)]
pub struct Ctx {
    /// Run-length preset.
    pub scale: Scale,
    /// Worker pool for the sweep grids.
    pub pool: Pool,
    /// Shared model cache.
    pub cache: ModelCache,
}

impl Ctx {
    /// A context from explicit options, using the standard cache
    /// directory.
    pub fn from_options(opts: CliOptions) -> Ctx {
        Ctx {
            scale: opts.scale,
            pool: Pool::new(opts.threads),
            cache: ModelCache::standard(!opts.no_cache),
        }
    }

    /// A context from the process arguments; usage errors are fatal
    /// (exit code 2).
    pub fn from_cli() -> Ctx {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match parse(&args) {
            Ok(opts) => Ctx::from_options(opts),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// A serial, cache-disabled context — what tests and library callers
    /// use when they want the plain deterministic path.
    pub fn serial_uncached(scale: Scale) -> Ctx {
        Ctx {
            scale,
            pool: Pool::serial(),
            cache: ModelCache::standard(false),
        }
    }
}

/// Standard `main` body for a single-experiment binary: build the context
/// from argv, run the experiment, exit non-zero on failure.
pub fn exp_main(run: fn(&Ctx) -> ExpResult) {
    let ctx = Ctx::from_cli();
    if let Err(e) = run(&ctx) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&s(&["--scale", "quick", "--threads", "3", "--no-cache"])).unwrap();
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.threads, 3);
        assert!(o.no_cache);
    }

    #[test]
    fn rejects_scale_typo_with_options_listed() {
        let e = parse(&s(&["--scale", "ful"])).unwrap_err();
        assert!(e.contains("ful"), "{e}");
        assert!(e.contains("quick, default, full"), "{e}");
    }

    #[test]
    fn rejects_bad_thread_counts() {
        for bad in ["0", "-2", "two", "1.5", ""] {
            assert!(parse_threads(bad).is_err(), "{bad:?} accepted");
        }
        assert_eq!(parse_threads("8"), Ok(8));
    }

    #[test]
    fn rejects_unknown_options_and_missing_values() {
        assert!(parse(&s(&["--scael", "quick"])).is_err());
        assert!(parse(&s(&["--scale"])).is_err());
        assert!(parse(&s(&["--threads"])).is_err());
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Default);
        assert!(o.threads >= 1);
        assert!(!o.no_cache);
    }
}
