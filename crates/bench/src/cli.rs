//! Shared command-line handling and run context for the experiment
//! binaries.
//!
//! Every binary accepts the same options:
//!
//! * `--scale quick|default|full` — run-length preset ([`Scale`]),
//! * `--threads N` — worker count for the parallel sweeps (default: the
//!   `HYBP_THREADS` environment variable, else
//!   [`std::thread::available_parallelism`]),
//! * `--no-cache` — bypass the on-disk model cache entirely,
//! * `--telemetry DIR` — export one sorted telemetry JSONL file per
//!   experiment into `DIR`. Capture implies `--no-cache`: a cached point
//!   runs no simulation and would emit no events, so serving from disk
//!   would make the export depend on cache state.
//! * `--trace-dir DIR` — replay every instruction stream from the `.bpt`
//!   traces in `DIR` (recorded with `trace_tool record`) instead of
//!   running the synthetic generators. Replay also implies `--no-cache`: a
//!   cached point runs no simulation and would silently skip the trace
//!   path it claims to exercise.
//! * `--trace-mode strict|lenient` — how trace damage is treated
//!   (default `strict`; only valid with `--trace-dir`). Strict fails the
//!   affected sweep points with an error naming the damaged chunk;
//!   lenient completes on the surviving records and flags the run as
//!   degraded (`# partial` CSV header, non-zero exit).
//! * `--benches a,b,...` — restrict benchmark-driven experiments that
//!   honor subsets (currently fig5) to the named benchmarks.
//! * `--sample k=K,window=W,...` — phase-sampled replay (only valid with
//!   `--trace-dir`): cluster each stream's windows into K phases and
//!   replay one weighted representative per phase instead of the whole
//!   trace. Sampled CSVs carry a `# sampled:` header naming the window
//!   counts and coverage.
//!
//! Unknown options and malformed values are fatal usage errors (exit
//! code 2) with a message listing what is valid — a typo must never
//! silently fall back to a default and quietly measure the wrong thing.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use bp_common::pool::{FailMode, Pool, RetryPolicy, TaskError};
use bp_faults::points::{PointDisposition, PointFaultPlan};
use bp_trace::{ReadMode, SamplingSpec, TraceSession, TraceStore};
use bp_workloads::profile::SpecBenchmark;

use crate::cache::ModelCache;
use crate::supervise::{PointFailure, Supervisor, SweepReport};
use crate::telemetry::TelemetryHub;
use crate::{Csv, ExpResult, Scale};

/// Option summary printed with every usage error.
pub const USAGE: &str = "options: [--scale quick|default|full] [--threads N] [--no-cache] \
     [--telemetry DIR] [--trace-dir DIR] [--trace-mode strict|lenient] [--benches a,b,...] \
     [--sample k=K,window=W,dims=D,warmup=U,seed=S,iters=I]";

/// Parsed command-line options, before any pool/cache is constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Run-length preset.
    pub scale: Scale,
    /// Worker count (≥ 1, already resolved against the environment).
    pub threads: usize,
    /// Whether `--no-cache` was given.
    pub no_cache: bool,
    /// Telemetry JSONL export directory (`--telemetry DIR`), if any.
    pub telemetry: Option<PathBuf>,
    /// Trace replay directory (`--trace-dir DIR`), if any.
    pub trace_dir: Option<PathBuf>,
    /// Trace decode mode (`--trace-mode`; default strict).
    pub trace_mode: ReadMode,
    /// Benchmark subset (`--benches`), if any.
    pub benches: Option<Vec<SpecBenchmark>>,
    /// Phase-sampling spec (`--sample`), if any.
    pub sample: Option<SamplingSpec>,
}

/// Parses a `--benches` value: comma-separated benchmark names.
///
/// # Errors
///
/// Rejects an empty list or any unknown name, listing what is valid.
pub fn parse_benches(v: &str) -> Result<Vec<SpecBenchmark>, String> {
    let valid = || {
        SpecBenchmark::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = Vec::new();
    for part in v.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match SpecBenchmark::ALL.iter().find(|b| b.name() == part) {
            Some(b) => out.push(*b),
            None => {
                return Err(format!(
                    "unknown benchmark '{part}': valid names are {}",
                    valid()
                ))
            }
        }
    }
    if out.is_empty() {
        return Err(format!(
            "--benches needs at least one name; valid names are {}",
            valid()
        ));
    }
    Ok(out)
}

/// Parses a `--threads`/`HYBP_THREADS` value.
///
/// # Errors
///
/// Rejects anything that is not a positive integer, with a message
/// naming the offending value.
pub fn parse_threads(v: &str) -> Result<usize, String> {
    bp_common::parse::positive("thread count", v).map(|n| n as usize)
}

/// Resolves the worker count when `--threads` is absent: a set
/// `HYBP_THREADS` must parse (same strictness as the flag), otherwise the
/// machine's available parallelism is used.
#[allow(clippy::disallowed_methods)] // waived in bp-lint with the reason below
fn threads_from_env() -> Result<usize, String> {
    // bp-lint: allow(determinism-env) reason="HYBP_THREADS is an operator parallelism knob; it changes scheduling only, never the simulated results"
    match std::env::var("HYBP_THREADS") {
        Ok(v) => parse_threads(&v).map_err(|e| format!("HYBP_THREADS: {e}")),
        Err(_) => Ok(Pool::machine_sized().threads()),
    }
}

/// Parses the shared options from `args` (argv without the program name).
///
/// # Errors
///
/// Returns a usage message on any unknown option, missing value, unknown
/// scale, or non-positive thread count.
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut scale = Scale::Default;
    let mut threads: Option<usize> = None;
    let mut no_cache = false;
    let mut telemetry: Option<PathBuf> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut trace_mode: Option<ReadMode> = None;
    let mut benches: Option<Vec<SpecBenchmark>> = None;
    let mut sample: Option<SamplingSpec> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-dir" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--trace-dir needs a directory; {USAGE}"))?;
                trace_dir = Some(PathBuf::from(v));
                i += 2;
            }
            "--trace-mode" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--trace-mode needs a value; {USAGE}"))?;
                trace_mode = Some(ReadMode::parse(v)?);
                i += 2;
            }
            "--benches" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--benches needs a list; {USAGE}"))?;
                benches = Some(parse_benches(v)?);
                i += 2;
            }
            "--sample" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--sample needs a spec; {USAGE}"))?;
                sample = Some(SamplingSpec::parse(v)?);
                i += 2;
            }
            "--scale" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--scale needs a value; {USAGE}"))?;
                scale = Scale::parse(v)?;
                i += 2;
            }
            "--threads" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--threads needs a value; {USAGE}"))?;
                threads = Some(parse_threads(v)?);
                i += 2;
            }
            "--no-cache" => {
                no_cache = true;
                i += 1;
            }
            "--telemetry" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--telemetry needs a directory; {USAGE}"))?;
                telemetry = Some(PathBuf::from(v));
                i += 2;
            }
            other => return Err(format!("unknown option '{other}'; {USAGE}")),
        }
    }
    let threads = match threads {
        Some(t) => t,
        None => threads_from_env()?,
    };
    if trace_mode.is_some() && trace_dir.is_none() {
        return Err(format!(
            "--trace-mode only applies to trace replay; add --trace-dir DIR. {USAGE}"
        ));
    }
    if sample.is_some() && trace_dir.is_none() {
        return Err(format!(
            "--sample only applies to trace replay; add --trace-dir DIR. {USAGE}"
        ));
    }
    Ok(CliOptions {
        scale,
        threads,
        no_cache,
        telemetry,
        trace_dir,
        trace_mode: trace_mode.unwrap_or_default(),
        benches,
        sample,
    })
}

/// Seed of the standard deterministic retry backoff schedule. Backoff
/// affects only *when* a retry runs, never what it computes, but a fixed
/// seed keeps reruns bit-identical end to end.
pub const RETRY_SEED: u64 = 0x4879_4250; // "HyBP"

/// Everything an experiment body needs: the scale preset, the worker
/// pool, the shared on-disk model cache, and the sweep supervisor. One
/// `Ctx` serves a whole `bench_all` suite run, so cache statistics
/// aggregate across experiments while the supervisor is drained per
/// experiment.
#[derive(Debug)]
pub struct Ctx {
    /// Run-length preset.
    pub scale: Scale,
    /// Worker pool for the sweep grids.
    pub pool: Pool,
    /// Shared model cache.
    pub cache: ModelCache,
    /// Retry policy applied to every supervised sweep.
    pub retry: RetryPolicy,
    /// Harness point-fault plan (normally empty; populated from
    /// `HYBP_FAULT_POINTS` for resilience testing).
    pub fault_points: PointFaultPlan,
    /// Accumulates sweep outcomes for the run report.
    pub supervisor: Supervisor,
    /// Directory CSVs are written into (default `results/`).
    pub results_dir: PathBuf,
    /// Telemetry collection hub (disabled unless `--telemetry` was given
    /// or [`Ctx::with_telemetry_dir`] was called).
    pub telemetry: TelemetryHub,
    /// Directory telemetry JSONL files are flushed into, when enabled.
    pub telemetry_dir: Option<PathBuf>,
    /// Trace store replacing the synthetic generators, when replaying
    /// (`--trace-dir`).
    pub trace: Option<Arc<TraceStore>>,
    /// Benchmark subset restriction (`--benches`), honored by experiments
    /// that sweep benchmarks (currently fig5).
    pub bench_subset: Option<Vec<SpecBenchmark>>,
    /// Phase-sampling spec (`--sample`): experiments that replay traces
    /// estimate from weighted representative windows instead of full
    /// streams, and mark their CSVs with a `# sampled:` header.
    pub sampling: Option<SamplingSpec>,
}

impl Ctx {
    /// A context from explicit parts, with the standard retry policy, no
    /// injected point faults, and CSVs under `results/`.
    pub fn custom(scale: Scale, pool: Pool, cache: ModelCache) -> Ctx {
        Ctx {
            scale,
            pool,
            cache,
            retry: RetryPolicy::standard(RETRY_SEED),
            fault_points: PointFaultPlan::empty(),
            supervisor: Supervisor::new(),
            results_dir: PathBuf::from("results"),
            telemetry: TelemetryHub::new(false),
            telemetry_dir: None,
            trace: None,
            bench_subset: None,
            sampling: None,
        }
    }

    /// Arms phase-sampled replay under `spec` (requires a trace store).
    pub fn with_sampling(mut self, spec: SamplingSpec) -> Ctx {
        self.sampling = Some(spec);
        self
    }

    /// Attaches a trace store: every simulation point replays captured
    /// streams instead of generating. Callers who also hold a cache must
    /// disable it — a cache hit would silently skip the replay
    /// ([`Ctx::from_options`] enforces this for the CLI path).
    pub fn with_trace_store(mut self, store: Arc<TraceStore>) -> Ctx {
        self.trace = Some(store);
        self
    }

    /// Restricts benchmark sweeps to `benches`.
    pub fn with_bench_subset(mut self, benches: Vec<SpecBenchmark>) -> Ctx {
        self.bench_subset = Some(benches);
        self
    }

    /// Replaces the CSV output directory (tests point this at a temp dir
    /// so they never clobber the tracked `results/` files).
    pub fn with_results_dir(mut self, dir: impl Into<PathBuf>) -> Ctx {
        self.results_dir = dir.into();
        self
    }

    /// Replaces the point-fault plan.
    pub fn with_fault_points(mut self, plan: PointFaultPlan) -> Ctx {
        self.fault_points = plan;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Ctx {
        self.retry = retry;
        self
    }

    /// Enables telemetry capture, flushing one JSONL file per experiment
    /// into `dir`. Callers who also hold a cache must disable it — see the
    /// module docs ([`Ctx::from_options`] enforces this for the CLI path).
    pub fn with_telemetry_dir(mut self, dir: impl Into<PathBuf>) -> Ctx {
        self.telemetry = TelemetryHub::new(true);
        self.telemetry_dir = Some(dir.into());
        self
    }

    /// A context from explicit options, using the standard cache
    /// directory. A malformed `HYBP_FAULT_POINTS` value is a fatal usage
    /// error (exit code 2) — a typo must never silently inject nothing.
    pub fn from_options(opts: CliOptions) -> Ctx {
        let fault_points = match PointFaultPlan::from_env() {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        // Telemetry capture and trace replay both force the cache off: a
        // cache hit runs no simulation, so it would emit no events and
        // would silently skip the replay path.
        let cache_enabled = !opts.no_cache && opts.telemetry.is_none() && opts.trace_dir.is_none();
        let mut ctx = Ctx::custom(
            opts.scale,
            Pool::new(opts.threads),
            ModelCache::standard(cache_enabled),
        )
        .with_fault_points(fault_points);
        if let Some(dir) = opts.telemetry {
            ctx = ctx.with_telemetry_dir(dir);
        }
        if let Some(dir) = opts.trace_dir {
            // Harness-level I/O faults (`HYBP_FAULT_POINTS` byte-fault
            // entries) are injected at trace ingest — the adversarial
            // decode path exercised end to end.
            let mut builder = TraceSession::open(dir)
                .mode(opts.trace_mode)
                .ingest_faults(ctx.fault_points.io_plan());
            if let Some(spec) = opts.sample {
                builder = builder.sampling(spec);
            }
            let session = match builder.build() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            ctx = ctx.with_trace_store(Arc::clone(session.store()));
            if let Some(spec) = session.sampling() {
                ctx = ctx.with_sampling(*spec);
            }
        }
        if let Some(benches) = opts.benches {
            ctx = ctx.with_bench_subset(benches);
        }
        ctx
    }

    /// A context from the process arguments; usage errors are fatal
    /// (exit code 2).
    pub fn from_cli() -> Ctx {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match parse(&args) {
            Ok(opts) => Ctx::from_options(opts),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// A serial, cache-disabled context — what tests and library callers
    /// use when they want the plain deterministic path.
    pub fn serial_uncached(scale: Scale) -> Ctx {
        Ctx::custom(scale, Pool::serial(), ModelCache::standard(false))
    }

    /// Runs one supervised sweep: `f` over `items` in input order,
    /// fail-soft, with the context's retry policy and point-fault plan.
    ///
    /// Returns one slot per item — `Some(value)` for completed points,
    /// `None` for points lost to a panic or exhausted retries — and
    /// records a [`SweepReport`] with the supervisor. Aggregations must
    /// iterate completed slots only, so a degraded sweep yields a partial
    /// (but never wrong) CSV; with no losses the output is identical to a
    /// plain `par_map`.
    pub fn sweep<T, R, F>(&self, label: &str, items: &[T], f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let attempts_seen: Vec<AtomicU32> = items.iter().map(|_| AtomicU32::new(0)).collect();
        let results = self.pool.try_par_map(
            items,
            FailMode::FailSoft,
            &self.retry,
            |i, item, attempt| {
                attempts_seen[i].fetch_max(attempt, Ordering::Relaxed);
                match self.fault_points.disposition(label, i, attempt) {
                    PointDisposition::Proceed => Ok(f(item)),
                    PointDisposition::Panic => {
                        // bp-lint: allow(panic-freedom) reason="deliberate injected point fault used to exercise the supervised-sweep recovery path"
                        panic!("injected point fault: panic at {label}[{i}] attempt {attempt}")
                    }
                    PointDisposition::FatalError => Err(TaskError::fatal(format!(
                        "injected point fault: fatal error at {label}[{i}]"
                    ))),
                    PointDisposition::TransientError => Err(TaskError::transient(format!(
                        "injected point fault: transient error at {label}[{i}] attempt {attempt}"
                    ))),
                }
            },
        );
        let mut completed = 0;
        let mut recovered = 0;
        let mut retried_attempts = 0u32;
        let mut failures = Vec::new();
        let mut out = Vec::with_capacity(items.len());
        for (i, r) in results.into_iter().enumerate() {
            let attempts = attempts_seen[i].load(Ordering::Relaxed);
            retried_attempts += attempts.saturating_sub(1);
            match r {
                Ok(v) => {
                    completed += 1;
                    if attempts > 1 {
                        recovered += 1;
                    }
                    out.push(Some(v));
                }
                Err(fail) => {
                    failures.push(PointFailure::from_task(&fail));
                    out.push(None);
                }
            }
        }
        self.supervisor.record(SweepReport {
            label: label.to_string(),
            total: items.len(),
            completed,
            retried_attempts,
            recovered,
            failures,
        });
        out
    }

    /// [`Ctx::sweep`] over an index range.
    pub fn sweep_indices<R, F>(&self, label: &str, count: usize, f: F) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.sweep(label, &indices, |&i| f(i))
    }

    /// A CSV accumulator rooted at the context's results directory.
    pub fn csv(&self, name: &str, header: &str) -> Csv {
        Csv::at_dir(&self.results_dir, name, header)
    }

    /// Finishes an experiment: writes `csv`, marking it partial when any
    /// undrained sweep lost points, and turns those losses into a visible
    /// failure. When telemetry is enabled, also flushes the hub into
    /// `<telemetry_dir>/<csv-stem>.jsonl` — preceded by a
    /// `("bench", "points")` mark carrying the sweep-point total, so even
    /// an experiment whose runs emitted no spans produces a non-empty,
    /// schema-valid file.
    ///
    /// A degraded experiment still writes everything it computed — the
    /// returned error reports the loss (and names the lost points), it
    /// does not discard work.
    ///
    /// # Errors
    ///
    /// I/O failure writing the CSV or the telemetry JSONL, or a
    /// degradation report when sweep points were lost.
    pub fn finish_experiment(&self, mut csv: Csv) -> ExpResult {
        self.report_trace_degradation();
        let (lost, total) = self.supervisor.pending_losses();
        if lost > 0 {
            csv.mark_partial(total - lost, total);
        }
        let stem = csv.stem();
        let path = csv.finish()?;
        if let Some(dir) = &self.telemetry_dir {
            self.telemetry.mark("bench", "points", total as u64);
            let summary = self.telemetry.flush_jsonl(dir, &stem)?;
            println!(
                "wrote {} ({} events)",
                summary.path.display(),
                summary.events
            );
        }
        if lost > 0 {
            let named: Vec<String> = self
                .supervisor
                .pending_failures()
                .iter()
                .map(|(label, f)| format!("{label}[{}]", f.index))
                .collect();
            return Err(format!(
                "degraded: lost {lost}/{total} sweep points ({}); partial CSV at {path}",
                named.join(", ")
            )
            .into());
        }
        println!("wrote {path}");
        Ok(())
    }

    /// Converts trace-store degradation (lenient-mode losses, stream
    /// wrap-arounds) into a synthetic `trace:ingest` sweep report, so the
    /// standard partial-tolerant path handles it: the CSV gains its
    /// `# partial` header and [`Ctx::finish_experiment`] returns the
    /// degradation error. Points that *computed* are still written — a
    /// degraded replay is reported, never discarded.
    fn report_trace_degradation(&self) {
        let Some(store) = &self.trace else { return };
        if !store.is_degraded() {
            return;
        }
        let damaged = store.damaged_files();
        let wraps = store.wraps();
        let mut failures: Vec<PointFailure> = damaged
            .iter()
            .enumerate()
            .map(|(i, (name, health))| PointFailure {
                index: i,
                attempts: 1,
                panicked: false,
                message: format!("{name}: {health}"),
            })
            .collect();
        if wraps > 0 {
            failures.push(PointFailure {
                index: damaged.len(),
                attempts: 1,
                panicked: false,
                message: format!(
                    "{wraps} stream wrap-around(s): the capture is shorter than the run it replayed"
                ),
            });
        }
        for f in &failures {
            eprintln!("trace degradation: {}", f.message);
        }
        let total = store.files_loaded() as usize + usize::from(wraps > 0);
        self.supervisor.record(SweepReport {
            label: "trace:ingest".to_string(),
            total,
            completed: total - failures.len(),
            retried_attempts: 0,
            recovered: 0,
            failures,
        });
    }
}

/// Standard `main` body for a single-experiment binary: build the context
/// from argv, run the experiment, exit non-zero on failure.
pub fn exp_main(run: fn(&Ctx) -> ExpResult) {
    let ctx = Ctx::from_cli();
    if let Err(e) = run(&ctx) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&s(&["--scale", "quick", "--threads", "3", "--no-cache"])).unwrap();
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.threads, 3);
        assert!(o.no_cache);
    }

    #[test]
    fn rejects_scale_typo_with_options_listed() {
        let e = parse(&s(&["--scale", "ful"])).unwrap_err();
        assert!(e.contains("ful"), "{e}");
        assert!(e.contains("quick, default, full"), "{e}");
    }

    #[test]
    fn rejects_bad_thread_counts() {
        for bad in ["0", "-2", "two", "1.5", ""] {
            assert!(parse_threads(bad).is_err(), "{bad:?} accepted");
        }
        assert_eq!(parse_threads("8"), Ok(8));
    }

    #[test]
    fn rejects_unknown_options_and_missing_values() {
        assert!(parse(&s(&["--scael", "quick"])).is_err());
        assert!(parse(&s(&["--scale"])).is_err());
        assert!(parse(&s(&["--threads"])).is_err());
        assert!(parse(&s(&["--telemetry"])).is_err());
    }

    #[test]
    fn telemetry_flag_parses_and_forces_cache_off() {
        let o = parse(&s(&["--telemetry", "out/telemetry", "--threads", "1"])).unwrap();
        assert_eq!(
            o.telemetry.as_deref(),
            Some(std::path::Path::new("out/telemetry"))
        );
        let ctx = Ctx::from_options(o);
        assert!(ctx.telemetry.is_enabled());
        assert_eq!(
            ctx.telemetry_dir.as_deref(),
            Some(std::path::Path::new("out/telemetry"))
        );
        assert!(
            !ctx.cache.is_enabled(),
            "telemetry capture must disable the model cache"
        );
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Default);
        assert!(o.threads >= 1);
        assert!(!o.no_cache);
    }
}
